"""The ``repro`` command line — a reproducible front door to the analysis.

Six subcommands, all built on the unified analysis API:

``repro prove FILE``
    Run one registered prover on a mini-language program (``-`` reads
    stdin).  ``--json`` emits the full, exactly round-trippable
    :class:`~repro.api.result.AnalysisResult` document; ``--trace FILE``
    dumps the engine's event stream as JSON-lines.  Exit code: 0 proved
    terminating, 5 proved *non*-terminating (lasso witness attached), 2
    unknown, 1 error.

``repro list-provers``
    The prover registry: every stable tool name with its summary.

``repro check FILE | repro check --suite NAME``
    Prove a program (or a whole benchmark suite) and re-verify every
    claimed ranking function with the independent Farkas certificate
    checker of :mod:`repro.checking`.  Exit code: 0 every claim
    validated, 3 a certificate was rejected or missing (soundness!), 4 a
    check hit its budget (inconclusive), 2 nothing proved (file mode),
    1 error.

``repro fuzz``
    Seeded differential campaign: generate random programs, run every
    requested prover on each, audit every certificate, flag soundness
    violations (with shrunk reproducers).  Exit code: 0 clean, 1
    violations or generator failures.

``repro table1``
    Regenerate the paper's Table 1 over the bundled benchmark suites
    through the parallel engine (the same engine CI runs; also reachable
    as ``python benchmarks/table1.py``).

``repro bench``
    The sparse-kernel performance micro-suite: row-kernel ops vs the
    dense baseline, a simplex batch, pruned Fourier–Motzkin and a
    Table-1 WTC slice, written to ``BENCH_kernel.json`` (also reachable
    as ``python benchmarks/perf_kernel.py``).

Installed as a console script (``pip install -e .``) and always available
as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import contextlib
import functools
import json
import sys
import time
from dataclasses import replace

from repro.api import (
    AnalysisConfig,
    AnalysisRequest,
    CEX_ORACLES,
    CEX_STRATEGIES,
    ConfigError,
    DOMAINS,
    KERNELS,
    NONTERM_MODES,
    RequestError,
    SMT_MODES,
    analyze,
    canonical_name,
    prover_capabilities,
    prover_summaries,
)
from repro.core.lp_instance import LP_MODES


# ---------------------------------------------------------------------------
# repro prove
# ---------------------------------------------------------------------------


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags mirroring the :class:`AnalysisConfig` fields, all optional."""
    group = parser.add_argument_group(
        "analysis configuration",
        "defaults come from AnalysisConfig (or --config when given); "
        "explicit flags win",
    )
    group.add_argument(
        "--config",
        metavar="FILE",
        default=None,
        help="load an AnalysisConfig JSON document (as written by "
        "AnalysisConfig.to_json) and use it as the baseline",
    )
    group.add_argument("--smt-mode", choices=list(SMT_MODES), default=None)
    group.add_argument("--lp-mode", choices=list(LP_MODES), default=None)
    group.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default=None,
        help="LP/projection row kernel: 'packed' (numpy int64 fast path "
        "with exact overflow fallback), 'exact' (bignum rows) or 'auto'",
    )
    group.add_argument("--domain", choices=list(DOMAINS), default=None)
    group.add_argument(
        "--oracle",
        dest="cex_oracle",
        choices=list(CEX_ORACLES),
        default=None,
        help="counterexample oracle of the CEGIS engine (default: smt, "
        "the paper's optimising extremal-point query)",
    )
    group.add_argument(
        "--cex-strategy",
        choices=list(CEX_STRATEGIES),
        default=None,
        help="counterexample selection strategy (default: extremal; "
        "'arbitrary'/'random' are the paper's ablation)",
    )
    group.add_argument(
        "--cex-batch",
        type=int,
        metavar="K",
        default=None,
        help="LP rows added per refinement iteration (default: 1)",
    )
    group.add_argument(
        "--oracle-seed",
        type=int,
        metavar="N",
        default=None,
        help="seed of the sampling oracle / random strategy (default: 0)",
    )
    group.add_argument("--max-iterations", type=int, metavar="N", default=None)
    group.add_argument("--max-dimension", type=int, metavar="N", default=None)
    group.add_argument(
        "--nonterm",
        choices=list(NONTERM_MODES),
        default=None,
        help="nontermination analysis: 'off' (default), 'auto' (race "
        "recurrence-set synthesis against termination) or 'only'",
    )
    group.add_argument(
        "--nonterm-budget",
        type=int,
        metavar="N",
        default=None,
        help="cap on recurrence-set candidates examined (default: 64)",
    )
    group.add_argument(
        "--integer-mode",
        action="store_true",
        default=None,
        help="tighten strict inequalities over integer variables",
    )
    group.add_argument(
        "--no-certificates",
        action="store_true",
        help="skip the independent certificate check",
    )
    group.add_argument(
        "--no-guard-restriction",
        action="store_true",
        help="do not restrict invariants to guarded states",
    )


def _config_from_arguments(arguments: argparse.Namespace) -> AnalysisConfig:
    if arguments.config:
        with open(arguments.config) as handle:
            config = AnalysisConfig.from_json(handle.read())
    else:
        config = AnalysisConfig()
    overrides = {}
    for flag, field in [
        ("smt_mode", "smt_mode"),
        ("lp_mode", "lp_mode"),
        ("kernel", "kernel"),
        ("domain", "domain"),
        ("cex_oracle", "cex_oracle"),
        ("cex_strategy", "cex_strategy"),
        ("cex_batch", "cex_batch"),
        ("oracle_seed", "oracle_seed"),
        ("max_iterations", "max_iterations"),
        ("max_dimension", "max_dimension"),
        ("nonterm", "nonterm"),
        ("nonterm_budget", "nonterm_budget"),
        ("integer_mode", "integer_mode"),
    ]:
        value = getattr(arguments, flag)
        if value is not None:
            overrides[field] = value
    if arguments.no_certificates:
        overrides["check_certificates"] = False
    if arguments.no_guard_restriction:
        overrides["restrict_to_guarded"] = False
    return config.replace(**overrides)


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def command_prove(arguments: argparse.Namespace) -> int:
    try:
        tool = canonical_name(arguments.tool)
    except KeyError as error:
        print("error: %s" % error.args[0], file=sys.stderr)
        return 1
    try:
        config = _config_from_arguments(arguments)
    except (ConfigError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    try:
        source = _read_program(arguments.file)
    except OSError as error:
        print("error: cannot read %s: %s" % (arguments.file, error), file=sys.stderr)
        return 1

    name = arguments.name or (
        "stdin" if arguments.file == "-" else arguments.file
    )
    # The same request object the JSON-RPC service constructs: there is
    # exactly one request schema across every front door.
    try:
        request = AnalysisRequest(
            program=source, tool=tool, config=config, name=name
        )
    except RequestError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    # The trace stream is opened *before* the engine runs and every event
    # is written and flushed as it happens, inside a context manager.  An
    # engine exception (or a cancelled nonterm race) therefore still
    # leaves a closed file of complete, individually parseable JSON lines
    # — buffering the events and dumping them after ``analyze`` returned
    # used to leak the handle and truncate the last line on a crash.
    trace_handle = None
    if arguments.trace:
        try:
            trace_handle = open(arguments.trace, "w")
        except OSError as error:
            print(
                "error: cannot write %s: %s" % (arguments.trace, error),
                file=sys.stderr,
            )
            return 1

    def _write_trace_event(event) -> None:
        trace_handle.write(
            json.dumps(
                {
                    "kind": event.kind,
                    "component": event.component,
                    "iteration": event.iteration,
                    "payload": event.payload,
                },
                default=str,
                sort_keys=True,
            )
        )
        trace_handle.write("\n")
        trace_handle.flush()

    engine_observers = [_write_trace_event] if trace_handle is not None else []
    try:
        with trace_handle if trace_handle is not None else contextlib.nullcontext():
            result = analyze(request, engine_observers=engine_observers)
    except Exception as error:  # surface a parse/analysis failure as exit 1
        print("error: %s: %s" % (type(error).__name__, error), file=sys.stderr)
        return 1

    if arguments.json:
        print(result.to_json(indent=2))
    else:
        print("program            : %s" % result.program)
        print("tool               : %s" % result.tool)
        print("status             : %s" % result.status.value)
        if result.ranking is not None:
            print("ranking function   : %s" % result.ranking.pretty())
            print("dimension          : %d" % result.dimension)
        if result.lasso is not None:
            print("lasso witness      : %s" % result.lasso.describe())
        if result.certificate_checked:
            print("certificate        : checked")
        if result.message:
            print("note               : %s" % result.message)
        print("time               : %.1f ms" % (result.time_seconds * 1000.0))
        for stage in result.stages:
            print("  %-16s : %.1f ms" % (stage.name, stage.seconds * 1000.0))
        statistics = result.lp_statistics
        if statistics.instances:
            print(
                "LP                 : %d instances, avg (%.1f, %.1f), "
                "%d pivots (%d warm / %d cold solves)"
                % (
                    statistics.instances,
                    statistics.average_rows,
                    statistics.average_cols,
                    statistics.pivots,
                    statistics.warm_solves,
                    statistics.cold_solves,
                )
            )
    if result.status.value == "error":
        return 1
    if result.disproved:
        return 5
    return 0 if result.proved else 2


# ---------------------------------------------------------------------------
# repro check
# ---------------------------------------------------------------------------


def _check_one_program(program, name, tool, config, disjunct_cap):
    """Prove + independently audit one program.

    Returns ``(result, verdict, missing)``: *verdict* is the checker's
    (or ``None`` when there was nothing to check), *missing* flags an
    unauditable claim the exit code must not green-light — a
    ``TERMINATING`` claim on a cyclic program with no ranking attached,
    or a ``NONTERMINATING`` claim with no lasso witness.  *program* is
    mini-language source, a prepared automaton, or a benchmark
    description with ``build()``.
    """
    from repro.api import Analysis
    from repro.checking.checker import check_ranking
    from repro.checking.recurrence import check_recurrence

    if hasattr(program, "build"):
        program = program.build()
    analysis = Analysis(program, config=config, name=name)
    problem = analysis.problem()
    result = analysis.run(tool)
    verdict = None
    missing = False
    if result.proved and problem.blocks:
        if result.ranking is None:
            missing = True
        else:
            kwargs = (
                {} if disjunct_cap is None else {"disjunct_cap": disjunct_cap}
            )
            verdict = check_ranking(
                problem,
                result.ranking,
                integer_mode=config.integer_mode,
                **kwargs,
            )
    elif result.disproved:
        if result.lasso is None:
            missing = True
        else:
            verdict = check_recurrence(analysis.automaton(), result.lasso)
    return result, verdict, missing


def _check_row(program, name, tool, config, disjunct_cap) -> dict:
    """One ``repro check`` row as a plain dict (crosses worker boundaries)."""
    result, verdict, missing = _check_one_program(
        program, name, tool, config, disjunct_cap
    )
    return {
        "program": name,
        "tool": tool,
        "status": result.status.value,
        "dimension": result.dimension,
        "verdict": verdict.to_dict() if verdict is not None else None,
        "missing_certificate": missing,
    }


def command_check(arguments: argparse.Namespace) -> int:
    from repro.benchsuite import get_suite, suite_names

    try:
        tool = canonical_name(arguments.tool)
        config = _config_from_arguments(arguments)
    except KeyError as error:
        print("error: %s" % error.args[0], file=sys.stderr)
        return 1
    except (ConfigError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    # The command runs its own independent audit below; the prover-side
    # certificate stage would re-verify every ranking a second time.
    config = config.replace(check_certificates=False)

    if arguments.suite and arguments.file:
        print(
            "error: give either a FILE or --suite, not both",
            file=sys.stderr,
        )
        return 1

    jobs: list = []  # (name, source-or-benchmark)
    if arguments.suite:
        suites = (
            suite_names()
            if "all" in arguments.suite
            else list(dict.fromkeys(arguments.suite))
        )
        try:
            for suite in suites:
                for program in get_suite(suite):
                    jobs.append(("%s/%s" % (suite, program.name), program))
        except KeyError as error:
            print("error: %s" % error.args[0], file=sys.stderr)
            return 1
    elif arguments.file:
        try:
            jobs.append((arguments.file, _read_program(arguments.file)))
        except OSError as error:
            print(
                "error: cannot read %s: %s" % (arguments.file, error),
                file=sys.stderr,
            )
            return 1
    else:
        print("error: give a FILE or at least one --suite", file=sys.stderr)
        return 1

    # Each program runs through the crash-isolated engine when --jobs or
    # --timeout ask for it (run_tasks stays inline otherwise), so one
    # pathological program costs its budget, not the sweep.
    from repro.reporting.parallel import run_tasks

    thunks = [
        functools.partial(
            _check_row, program, name, tool, config, arguments.max_disjuncts
        )
        for name, program in jobs
    ]
    tasks = run_tasks(thunks, jobs=arguments.jobs, timeout=arguments.timeout)

    rows = []
    rejected = proved = validated = inconclusive = errors = missing = 0
    disproved = 0
    for (name, _), task in zip(jobs, tasks):
        if task.ok:
            row = task.value
        else:
            status = "timeout" if task.kind == "timeout" else "error"
            row = {
                "program": name,
                "tool": tool,
                "status": status,
                "error": task.message
                or "%s after %.1fs" % (task.kind, task.elapsed),
                "verdict": None,
            }
        rows.append(row)
        if row["status"] in ("error", "timeout"):
            errors += 1
            continue
        if row["status"] == "terminating":
            proved += 1
        if row["status"] == "nonterminating":
            disproved += 1
        if row.get("missing_certificate"):
            missing += 1
        verdict = row["verdict"]
        if verdict is not None:
            if verdict["status"] == "valid":
                validated += 1
            elif verdict["status"] == "invalid":
                rejected += 1
            else:
                inconclusive += 1

    if arguments.json:
        print(
            json.dumps(
                {
                    "tool": tool,
                    "programs": rows,
                    "totals": {
                        "programs": len(rows),
                        "proved": proved,
                        "disproved": disproved,
                        "errors": errors,
                        "certificates_valid": validated,
                        "certificates_rejected": rejected,
                        "certificates_inconclusive": inconclusive,
                        "missing_certificates": missing,
                    },
                },
                indent=2,
            )
        )
    else:
        for row in rows:
            verdict = row["verdict"]
            if row.get("missing_certificate"):
                note = (
                    "NONTERMINATING claim without a lasso witness!"
                    if row["status"] == "nonterminating"
                    else "TERMINATING claim without a ranking function!"
                )
            elif verdict is None:
                note = row.get("error") or "no certificate to check"
            else:
                note = "certificate %s (%d/%d obligations refuted)" % (
                    verdict["status"],
                    verdict["refuted"],
                    verdict["obligations"],
                )
            print(
                "%-36s %-12s %s" % (row["program"], row["status"], note)
            )
        print(
            "%d programs: %d proved, %d disproved, %d errors, "
            "%d certificates valid, %d rejected, %d missing, "
            "%d inconclusive"
            % (
                len(rows), proved, disproved, errors, validated, rejected,
                missing, inconclusive,
            )
        )

    # Exit contract: an unsound or unauditable claim (rejected or
    # missing certificate) dominates; then analysis errors; then
    # "checked but could not conclude"; file mode additionally signals
    # "nothing proved".
    if rejected or missing:
        return 3
    if errors:
        return 1
    if inconclusive:
        return 4
    if arguments.file and not arguments.suite and not proved and not disproved:
        return 2
    return 0


# ---------------------------------------------------------------------------
# repro fuzz
# ---------------------------------------------------------------------------


def command_fuzz(arguments: argparse.Namespace) -> int:
    from repro.checking.differential import default_fuzz_config, fuzz

    tools = None
    if arguments.tool:
        try:
            tools = [canonical_name(tool) for tool in arguments.tool]
        except KeyError as error:
            print("error: %s" % error.args[0], file=sys.stderr)
            return 1

    def verbose_progress(position, audit):
        print(
            "[%4d] %-28s %s"
            % (
                position,
                audit.name,
                " ".join(
                    "%s=%s" % (r.tool, r.status.value[:4])
                    for r in audit.results
                ),
            ),
            file=sys.stderr,
        )

    progress = verbose_progress if arguments.verbose else None

    config = default_fuzz_config()
    if arguments.kernel:
        config = replace(config, kernel=arguments.kernel)

    report = fuzz(
        seed=arguments.seed,
        count=arguments.count,
        tools=tools,
        config=config,
        shrink=not arguments.no_shrink,
        jobs=arguments.jobs,
        timeout=arguments.timeout,
        progress=progress,
    )

    print(report.summary())
    for violation in report.violations:
        print()
        print(
            "VIOLATION %s: %s on %s (reproduce: seed=%s index=%s)"
            % (
                violation.kind,
                violation.tool,
                violation.program,
                violation.seed,
                violation.index,
            )
        )
        print(violation.detail)
        print(violation.source)
    for error in report.build_errors:
        print("BUILD ERROR %s" % error)

    if arguments.json_path:
        try:
            with open(arguments.json_path, "w") as handle:
                json.dump(report.to_dict(), handle, indent=2)
                handle.write("\n")
        except OSError as error:
            print("error: cannot write %s: %s" % (arguments.json_path, error))
            return 1
        print("wrote %s" % arguments.json_path)

    return 0 if report.ok else 1


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------


def command_serve(arguments: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ServiceServer, serve_stdio

    if arguments.stdio == (arguments.port is not None):
        print("error: give exactly one of --stdio or --port", file=sys.stderr)
        return 1
    common = dict(
        cache=not arguments.no_cache,
        cache_entries=arguments.cache_entries,
        revalidate=not arguments.no_revalidate,
        max_program_bytes=arguments.max_program_bytes,
        cache_dir=arguments.cache_dir,
        cache_disk_bytes=arguments.cache_disk_bytes,
    )
    if arguments.stdio:
        return serve_stdio(timeout=arguments.timeout, **common)

    server = ServiceServer(
        host=arguments.host,
        port=arguments.port,
        jobs=arguments.jobs,
        timeout=arguments.timeout,
        max_inflight=arguments.max_inflight,
        max_queue=arguments.max_queue,
        fault_plan=arguments.fault_plan,
        **common,
    )

    async def _serve() -> None:
        port = await server.start()
        # Parsed by clients started with --port 0 (tests, CI smoke).
        print("listening on %s:%d" % (arguments.host, port), flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.service.cache import DEFAULT_MAX_DISK_BYTES, DEFAULT_MAX_ENTRIES
    from repro.service.protocol import DEFAULT_MAX_PROGRAM_BYTES

    door = parser.add_argument_group("front door (give exactly one)")
    door.add_argument(
        "--stdio",
        action="store_true",
        help="speak newline-delimited JSON-RPC over stdin/stdout "
        "(inline, single process)",
    )
    door.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="listen on TCP port N (0 picks a free port, printed as "
        "'listening on HOST:PORT') and dispatch onto the pre-forked "
        "worker pool",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address of the socket server (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="resident crash-isolated worker processes (default: 2)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock budget; an over-budget request gets "
        "a JSON-RPC timeout error and its worker is respawned "
        "(default: none)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache "
        "(every response carries provenance.cache = 'bypass')",
    )
    parser.add_argument(
        "--no-revalidate",
        action="store_true",
        help="serve cache hits without the independent checker pass "
        "(NOT recommended; the revalidation guarantee is the point)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=DEFAULT_MAX_ENTRIES,
        metavar="N",
        help="LRU bound on resident cache entries (default: %d)"
        % DEFAULT_MAX_ENTRIES,
    )
    parser.add_argument(
        "--max-program-bytes",
        type=int,
        default=DEFAULT_MAX_PROGRAM_BYTES,
        metavar="B",
        help="reject programs larger than B bytes with a "
        "PROGRAM_TOO_LARGE error (default: %d)" % DEFAULT_MAX_PROGRAM_BYTES,
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the result cache to DIR (one checksummed JSON file "
        "per key, atomically written); a restarted server serves warm "
        "traffic from it after checker revalidation (default: memory only)",
    )
    parser.add_argument(
        "--cache-disk-bytes",
        type=int,
        default=DEFAULT_MAX_DISK_BYTES,
        metavar="B",
        help="LRU byte bound of the --cache-dir tier (default: %d)"
        % DEFAULT_MAX_DISK_BYTES,
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission gate: concurrent computes before requests queue "
        "(default: --jobs)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="admission gate: queued requests before load is shed with "
        "the OVERLOADED error (default: 4x --jobs)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=argparse.SUPPRESS,  # chaos testing only: "seedN[:kill=P,...]"
    )


# ---------------------------------------------------------------------------
# repro bench (also the engine behind benchmarks/perf_kernel.py)
# ---------------------------------------------------------------------------


def command_bench(arguments: argparse.Namespace) -> int:
    from repro.reporting.perf import merge_bench_documents, run_suite

    started = time.perf_counter()
    try:
        document = run_suite(
            quick=arguments.quick,
            seed=arguments.seed,
            suites=arguments.suites or None,
        )
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started

    # A partial run (explicit suite selection) folds into the existing
    # trajectory file instead of clobbering the other suites' numbers.
    if arguments.suites and arguments.json_path and arguments.json_path != "-":
        try:
            with open(arguments.json_path) as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = None
        if previous is not None:
            document = merge_bench_documents(previous, document)

    for suite in document["suites"]:
        extras = " ".join(
            "%s=%s" % (key, value)
            for key, value in suite.items()
            if key not in ("suite", "wall_seconds")
        )
        print("%-12s %8.3fs  %s" % (suite["suite"], suite["wall_seconds"], extras))
    print(
        "%d suites, %.3fs measured (%.1fs wall)%s"
        % (
            len(document["suites"]),
            document["total_wall_seconds"],
            elapsed,
            " [quick]" if arguments.quick else "",
        )
    )

    if arguments.json_path and arguments.json_path != "-":
        try:
            with open(arguments.json_path, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
        except OSError as error:
            print(
                "error: cannot write %s: %s" % (arguments.json_path, error),
                file=sys.stderr,
            )
            return 1
        print("wrote %s" % arguments.json_path)
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.reporting.perf import SUITE_RUNNERS

    parser.add_argument(
        "suites",
        nargs="*",
        metavar="SUITE",
        help="suites to run (default: the five-kernel set; 'service' "
        "measures the resident front door).  A partial selection merges "
        "into the existing JSON report instead of replacing it.  "
        "Choices: %s" % ", ".join(sorted(SUITE_RUNNERS)),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller suite sizes (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the randomised suites (default: 0)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default="BENCH_kernel.json",
        metavar="OUT",
        help="where to write the machine-readable report "
        "(default: BENCH_kernel.json; '-' prints only)",
    )


def bench_main(argv=None) -> int:
    """Standalone entry point (used by ``benchmarks/perf_kernel.py``)."""
    parser = argparse.ArgumentParser(
        description="Run the sparse-kernel performance micro-suite.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_bench_arguments(parser)
    return command_bench(parser.parse_args(argv))


# ---------------------------------------------------------------------------
# repro list-provers
# ---------------------------------------------------------------------------


def command_list_provers(arguments: argparse.Namespace) -> int:
    summaries = prover_summaries()
    capabilities = prover_capabilities()
    if arguments.json:
        print(
            json.dumps(
                {"provers": summaries, "capabilities": capabilities}, indent=2
            )
        )
        return 0
    width = max(len(name) for name in summaries)
    for name, summary in summaries.items():
        print("%-*s  %s" % (width, name, summary))
        flags = capabilities.get(name)
        if flags:
            print("%-*s    capabilities: %s" % (width, "", ", ".join(flags)))
    return 0


# ---------------------------------------------------------------------------
# repro table1 (also the engine behind benchmarks/table1.py)
# ---------------------------------------------------------------------------


def add_table1_arguments(parser: argparse.ArgumentParser) -> None:
    # Imported here, not at module level: the suites materialise their
    # program sources at import time, which `import repro.cli` should not pay.
    from repro.benchsuite import suite_names

    parser.add_argument(
        "--suite",
        action="append",
        choices=suite_names(),
        help="suite(s) to run (default: all four)",
    )
    parser.add_argument(
        "--tool",
        action="append",
        metavar="TOOL",
        help="tool(s) to run, by registry name (default: termite and "
        "heuristic; see `repro list-provers`)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="only run the first N programs of each suite",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --limit 5",
    )
    parser.add_argument(
        "--filter",
        dest="name_filter",
        default=None,
        metavar="SUBSTRING",
        help="only run programs whose name contains SUBSTRING "
        "(an empty selection produces an empty table row, not an error)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run N programs concurrently in crash-isolated worker "
        "processes (default: 1, inline)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program wall-clock budget covering all requested tools "
        "(the problem build is shared across them); a program over budget "
        "is killed and recorded as failed (default: no timeout)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="OUT",
        help="also write the machine-readable run summary to OUT "
        "(schema_version 2; consumed by the CI benchmark smoke job)",
    )
    parser.add_argument(
        "--lp-mode",
        choices=list(LP_MODES),
        default="incremental",
        help="how termite re-solves LP(V, Constraints(I)) across "
        "counterexample iterations: 'incremental' warm-starts from the "
        "previous optimal basis, 'cold' rebuilds from scratch (the "
        "ablation baseline), 'audit' does both and cross-checks the "
        "optima (default: incremental)",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="auto",
        help="LP/projection row kernel: 'packed' (numpy int64 fast path "
        "with exact overflow fallback), 'exact' (bignum rows), or "
        "'auto' (default: packed on wide systems when numpy is "
        "available)",
    )


def command_table1(arguments: argparse.Namespace) -> int:
    from repro.benchsuite import get_suite, suite_names
    from repro.reporting import (
        format_table,
        reports_to_json_dict,
        run_table1,
    )
    from repro.reporting.table import TABLE1_HEADERS, format_table1_row

    suites = arguments.suite or suite_names()
    tools = arguments.tool or ["termite", "heuristic"]
    try:
        tools = [canonical_name(tool) for tool in tools]
    except KeyError as error:
        print("error: %s" % error.args[0], file=sys.stderr)
        return 2
    limit = 5 if arguments.quick and arguments.limit is None else arguments.limit

    started = time.perf_counter()
    reports = run_table1(
        {suite: get_suite(suite) for suite in suites},
        tools,
        limit=limit,
        jobs=arguments.jobs,
        timeout=arguments.timeout,
        lp_mode=arguments.lp_mode,
        name_filter=arguments.name_filter,
        kernel=arguments.kernel,
    )
    elapsed = time.perf_counter() - started

    rows = [format_table1_row(report) for report in reports]
    print(format_table(TABLE1_HEADERS, rows))
    print()
    document = reports_to_json_dict(
        reports,
        meta={
            "suites": list(suites),
            "tools": list(tools),
            "limit": limit,
            "filter": arguments.name_filter,
            "jobs": arguments.jobs,
            "timeout": arguments.timeout,
            "lp_mode": arguments.lp_mode,
            "kernel": arguments.kernel,
            "wall_seconds": round(elapsed, 3),
        },
    )
    totals = document["totals"]
    sharing = totals["problem_sharing"]
    print(
        "%d programs, %d proved, %d failed (%d timeouts), %d unsound | "
        "%d simplex pivots (%d warm / %d cold solves) | "
        "%.2fs problem-build wall-clock saved (%d rebuilds avoided) | "
        "lp-mode=%s jobs=%d wall=%.1fs"
        % (
            totals["programs"],
            totals["successes"],
            totals["failures"],
            totals["timeouts"],
            totals["unsound"],
            totals["total_pivots"],
            totals["warm_solves"],
            totals["cold_solves"],
            sharing["seconds_saved"],
            sharing["rebuilds_avoided"],
            arguments.lp_mode,
            arguments.jobs,
            elapsed,
        )
    )

    if arguments.json_path:
        try:
            with open(arguments.json_path, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
        except OSError as error:
            print("error: cannot write %s: %s" % (arguments.json_path, error))
            return 2
        print("wrote %s" % arguments.json_path)

    return 1 if totals["unsound"] else 0


def table1_main(argv=None) -> int:
    """Standalone Table-1 entry point (used by ``benchmarks/table1.py``)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table 1 over the bundled suites.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_table1_arguments(parser)
    return command_table1(parser.parse_args(argv))


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    prove = subparsers.add_parser(
        "prove",
        help="prove termination of one mini-language program",
        description="Run one registered prover on a program file "
        "('-' reads stdin).  Exit code: 0 proved terminating, 5 proved "
        "nonterminating, 2 unknown, 1 error.",
    )
    prove.add_argument("file", help="program file, or '-' for stdin")
    prove.add_argument(
        "--tool",
        default="termite",
        metavar="TOOL",
        help="registry name of the prover (default: termite; "
        "see `repro list-provers`)",
    )
    prove.add_argument(
        "--name", default=None, help="program name used in the result"
    )
    prove.add_argument(
        "--json",
        action="store_true",
        help="emit the full AnalysisResult as JSON (exactly round-trippable "
        "via AnalysisResult.from_json)",
    )
    prove.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="dump the engine's CegisEvent stream (termination and "
        "nontermination events) to FILE as JSON-lines",
    )
    _add_config_arguments(prove)
    prove.set_defaults(handler=command_prove)

    list_provers = subparsers.add_parser(
        "list-provers",
        help="list the registered provers",
        description="Every stable registry name with its summary.",
    )
    list_provers.add_argument("--json", action="store_true")
    list_provers.set_defaults(handler=command_list_provers)

    check = subparsers.add_parser(
        "check",
        help="independently re-verify ranking-function certificates",
        description="Prove a program (or whole benchmark suites with "
        "--suite) and re-check every claimed ranking function with the "
        "independent exact-rational Farkas checker.  Exit code: 0 all "
        "claims validated, 3 a certificate was rejected or a claim had "
        "none, 4 a check was inconclusive (budget), 2 nothing proved "
        "(file mode), 1 error.",
    )
    check.add_argument(
        "file",
        nargs="?",
        default=None,
        help="program file, or '-' for stdin (omit when using --suite)",
    )
    check.add_argument(
        "--suite",
        action="append",
        default=None,
        metavar="NAME",
        help="check a bundled benchmark suite instead of a file "
        "(repeatable; 'all' for every suite)",
    )
    check.add_argument(
        "--tool",
        default="termite",
        metavar="TOOL",
        help="registry name of the prover whose certificates to audit "
        "(default: termite)",
    )
    check.add_argument(
        "--max-disjuncts",
        type=int,
        default=None,
        metavar="N",
        help="cap on path disjuncts expanded per block before the "
        "checker reports 'inconclusive' (default: the checker's "
        "DEFAULT_DISJUNCT_CAP, 4096)",
    )
    check.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="check N programs concurrently in crash-isolated workers",
    )
    check.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program budget (prove + audit); an over-budget "
        "program is recorded as a timeout and counts as an error",
    )
    check.add_argument("--json", action="store_true")
    _add_config_arguments(check)
    check.set_defaults(handler=command_check)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing with independent certificate audit",
        description="Generate seeded random programs, run every "
        "requested prover on each, audit every claimed certificate and "
        "cross-check verdicts against constructed ground truth.  Exit "
        "code: 0 clean, 1 soundness violations or generator failures.",
    )
    fuzz.add_argument("--seed", type=int, default=0, metavar="N")
    fuzz.add_argument(
        "--count",
        type=int,
        default=100,
        metavar="N",
        help="number of programs to generate (default: 100)",
    )
    fuzz.add_argument(
        "--tool",
        action="append",
        default=None,
        metavar="TOOL",
        help="tool(s) to cross-examine (repeatable; default: every "
        "registered prover)",
    )
    fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="audit N programs concurrently in crash-isolated workers",
    )
    fuzz.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program budget covering all tools (runs through the "
        "crash-isolated engine; default: none)",
    )
    fuzz.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default=None,
        metavar="KERNEL",
        help="LP/projection row kernel for every prover under test "
        "(choices: %s; default: the config default)" % ", ".join(KERNELS),
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violations without shrinking the reproducer",
    )
    fuzz.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="OUT",
        help="also write the machine-readable fuzz report to OUT",
    )
    fuzz.add_argument(
        "--verbose",
        action="store_true",
        help="print one line per program to stderr as the campaign runs",
    )
    fuzz.set_defaults(handler=command_fuzz)

    table1 = subparsers.add_parser(
        "table1",
        help="regenerate the paper's Table 1 over the bundled suites",
        description="Run every requested (suite, tool) cell through the "
        "crash-isolated parallel engine.",
    )
    add_table1_arguments(table1)
    table1.set_defaults(handler=command_table1)

    bench = subparsers.add_parser(
        "bench",
        help="run the sparse-kernel performance micro-suite",
        description="Measure the scaled-integer row kernel, the simplex "
        "on top of it, pruned Fourier-Motzkin projection and a Table-1 "
        "WTC slice; write the trajectory to BENCH_kernel.json.",
    )
    add_bench_arguments(bench)
    bench.set_defaults(handler=command_bench)

    serve = subparsers.add_parser(
        "serve",
        help="run the resident analysis service (JSON-RPC over stdio or TCP)",
        description="Keep the analysis pipeline resident and serve "
        "newline-delimited JSON-RPC 2.0 requests, with a "
        "content-addressed result cache whose hits are re-validated by "
        "the independent certificate checker before serving.  See "
        "docs/SERVICE.md for the protocol reference.",
    )
    add_serve_arguments(serve)
    serve.set_defaults(handler=command_serve)

    return parser


def main(argv=None) -> int:
    arguments = build_parser().parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
