"""The ``repro`` command line — a reproducible front door to the analysis.

Three subcommands, all built on the unified analysis API:

``repro prove FILE``
    Run one registered prover on a mini-language program (``-`` reads
    stdin).  ``--json`` emits the full, exactly round-trippable
    :class:`~repro.api.result.AnalysisResult` document.  Exit code: 0
    proved, 2 not proved, 1 error.

``repro list-provers``
    The prover registry: every stable tool name with its summary.

``repro table1``
    Regenerate the paper's Table 1 over the bundled benchmark suites
    through the parallel engine (the same engine CI runs; also reachable
    as ``python benchmarks/table1.py``).

Installed as a console script (``pip install -e .``) and always available
as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.api import (
    AnalysisConfig,
    ConfigError,
    DOMAINS,
    SMT_MODES,
    analyze,
    available_provers,
    canonical_name,
    prover_summaries,
)
from repro.core.lp_instance import LP_MODES


# ---------------------------------------------------------------------------
# repro prove
# ---------------------------------------------------------------------------


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags mirroring the :class:`AnalysisConfig` fields, all optional."""
    group = parser.add_argument_group(
        "analysis configuration",
        "defaults come from AnalysisConfig (or --config when given); "
        "explicit flags win",
    )
    group.add_argument(
        "--config",
        metavar="FILE",
        default=None,
        help="load an AnalysisConfig JSON document (as written by "
        "AnalysisConfig.to_json) and use it as the baseline",
    )
    group.add_argument("--smt-mode", choices=list(SMT_MODES), default=None)
    group.add_argument("--lp-mode", choices=list(LP_MODES), default=None)
    group.add_argument("--domain", choices=list(DOMAINS), default=None)
    group.add_argument("--max-iterations", type=int, metavar="N", default=None)
    group.add_argument("--max-dimension", type=int, metavar="N", default=None)
    group.add_argument(
        "--integer-mode",
        action="store_true",
        default=None,
        help="tighten strict inequalities over integer variables",
    )
    group.add_argument(
        "--no-certificates",
        action="store_true",
        help="skip the independent certificate check",
    )
    group.add_argument(
        "--no-guard-restriction",
        action="store_true",
        help="do not restrict invariants to guarded states",
    )


def _config_from_arguments(arguments: argparse.Namespace) -> AnalysisConfig:
    if arguments.config:
        with open(arguments.config) as handle:
            config = AnalysisConfig.from_json(handle.read())
    else:
        config = AnalysisConfig()
    overrides = {}
    for flag, field in [
        ("smt_mode", "smt_mode"),
        ("lp_mode", "lp_mode"),
        ("domain", "domain"),
        ("max_iterations", "max_iterations"),
        ("max_dimension", "max_dimension"),
        ("integer_mode", "integer_mode"),
    ]:
        value = getattr(arguments, flag)
        if value is not None:
            overrides[field] = value
    if arguments.no_certificates:
        overrides["check_certificates"] = False
    if arguments.no_guard_restriction:
        overrides["restrict_to_guarded"] = False
    return config.replace(**overrides)


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def command_prove(arguments: argparse.Namespace) -> int:
    try:
        tool = canonical_name(arguments.tool)
    except KeyError as error:
        print("error: %s" % error.args[0], file=sys.stderr)
        return 1
    try:
        config = _config_from_arguments(arguments)
    except (ConfigError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    try:
        source = _read_program(arguments.file)
    except OSError as error:
        print("error: cannot read %s: %s" % (arguments.file, error), file=sys.stderr)
        return 1

    name = arguments.name or (
        "stdin" if arguments.file == "-" else arguments.file
    )
    try:
        result = analyze(source, tool=tool, config=config, name=name)
    except Exception as error:  # surface a parse/analysis failure as exit 1
        print("error: %s: %s" % (type(error).__name__, error), file=sys.stderr)
        return 1

    if arguments.json:
        print(result.to_json(indent=2))
    else:
        print("program            : %s" % result.program)
        print("tool               : %s" % result.tool)
        print("status             : %s" % result.status.value)
        if result.ranking is not None:
            print("ranking function   : %s" % result.ranking.pretty())
            print("dimension          : %d" % result.dimension)
        if result.certificate_checked:
            print("certificate        : checked")
        if result.message:
            print("note               : %s" % result.message)
        print("time               : %.1f ms" % (result.time_seconds * 1000.0))
        for stage in result.stages:
            print("  %-16s : %.1f ms" % (stage.name, stage.seconds * 1000.0))
        statistics = result.lp_statistics
        if statistics.instances:
            print(
                "LP                 : %d instances, avg (%.1f, %.1f), "
                "%d pivots (%d warm / %d cold solves)"
                % (
                    statistics.instances,
                    statistics.average_rows,
                    statistics.average_cols,
                    statistics.pivots,
                    statistics.warm_solves,
                    statistics.cold_solves,
                )
            )
    if result.status.value == "error":
        return 1
    return 0 if result.proved else 2


# ---------------------------------------------------------------------------
# repro list-provers
# ---------------------------------------------------------------------------


def command_list_provers(arguments: argparse.Namespace) -> int:
    summaries = prover_summaries()
    if arguments.json:
        print(json.dumps({"provers": summaries}, indent=2))
        return 0
    width = max(len(name) for name in summaries)
    for name, summary in summaries.items():
        print("%-*s  %s" % (width, name, summary))
    return 0


# ---------------------------------------------------------------------------
# repro table1 (also the engine behind benchmarks/table1.py)
# ---------------------------------------------------------------------------


def add_table1_arguments(parser: argparse.ArgumentParser) -> None:
    # Imported here, not at module level: the suites materialise their
    # program sources at import time, which `import repro.cli` should not pay.
    from repro.benchsuite import suite_names

    parser.add_argument(
        "--suite",
        action="append",
        choices=suite_names(),
        help="suite(s) to run (default: all four)",
    )
    parser.add_argument(
        "--tool",
        action="append",
        metavar="TOOL",
        help="tool(s) to run, by registry name (default: termite and "
        "heuristic; see `repro list-provers`)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="only run the first N programs of each suite",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --limit 5",
    )
    parser.add_argument(
        "--filter",
        dest="name_filter",
        default=None,
        metavar="SUBSTRING",
        help="only run programs whose name contains SUBSTRING "
        "(an empty selection produces an empty table row, not an error)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run N programs concurrently in crash-isolated worker "
        "processes (default: 1, inline)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program wall-clock budget covering all requested tools "
        "(the problem build is shared across them); a program over budget "
        "is killed and recorded as failed (default: no timeout)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="OUT",
        help="also write the machine-readable run summary to OUT "
        "(schema_version 2; consumed by the CI benchmark smoke job)",
    )
    parser.add_argument(
        "--lp-mode",
        choices=list(LP_MODES),
        default="incremental",
        help="how termite re-solves LP(V, Constraints(I)) across "
        "counterexample iterations: 'incremental' warm-starts from the "
        "previous optimal basis, 'cold' rebuilds from scratch (the "
        "ablation baseline), 'audit' does both and cross-checks the "
        "optima (default: incremental)",
    )


def command_table1(arguments: argparse.Namespace) -> int:
    from repro.benchsuite import get_suite, suite_names
    from repro.reporting import (
        format_table,
        reports_to_json_dict,
        run_table1,
    )
    from repro.reporting.table import TABLE1_HEADERS, format_table1_row

    suites = arguments.suite or suite_names()
    tools = arguments.tool or ["termite", "heuristic"]
    try:
        tools = [canonical_name(tool) for tool in tools]
    except KeyError as error:
        print("error: %s" % error.args[0], file=sys.stderr)
        return 2
    limit = 5 if arguments.quick and arguments.limit is None else arguments.limit

    started = time.perf_counter()
    reports = run_table1(
        {suite: get_suite(suite) for suite in suites},
        tools,
        limit=limit,
        jobs=arguments.jobs,
        timeout=arguments.timeout,
        lp_mode=arguments.lp_mode,
        name_filter=arguments.name_filter,
    )
    elapsed = time.perf_counter() - started

    rows = [format_table1_row(report) for report in reports]
    print(format_table(TABLE1_HEADERS, rows))
    print()
    document = reports_to_json_dict(
        reports,
        meta={
            "suites": list(suites),
            "tools": list(tools),
            "limit": limit,
            "filter": arguments.name_filter,
            "jobs": arguments.jobs,
            "timeout": arguments.timeout,
            "lp_mode": arguments.lp_mode,
            "wall_seconds": round(elapsed, 3),
        },
    )
    totals = document["totals"]
    sharing = totals["problem_sharing"]
    print(
        "%d programs, %d proved, %d failed (%d timeouts), %d unsound | "
        "%d simplex pivots (%d warm / %d cold solves) | "
        "%.2fs problem-build wall-clock saved (%d rebuilds avoided) | "
        "lp-mode=%s jobs=%d wall=%.1fs"
        % (
            totals["programs"],
            totals["successes"],
            totals["failures"],
            totals["timeouts"],
            totals["unsound"],
            totals["total_pivots"],
            totals["warm_solves"],
            totals["cold_solves"],
            sharing["seconds_saved"],
            sharing["rebuilds_avoided"],
            arguments.lp_mode,
            arguments.jobs,
            elapsed,
        )
    )

    if arguments.json_path:
        try:
            with open(arguments.json_path, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
        except OSError as error:
            print("error: cannot write %s: %s" % (arguments.json_path, error))
            return 2
        print("wrote %s" % arguments.json_path)

    return 1 if totals["unsound"] else 0


def table1_main(argv=None) -> int:
    """Standalone Table-1 entry point (used by ``benchmarks/table1.py``)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table 1 over the bundled suites.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_table1_arguments(parser)
    return command_table1(parser.parse_args(argv))


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    prove = subparsers.add_parser(
        "prove",
        help="prove termination of one mini-language program",
        description="Run one registered prover on a program file "
        "('-' reads stdin).  Exit code: 0 proved, 2 not proved, 1 error.",
    )
    prove.add_argument("file", help="program file, or '-' for stdin")
    prove.add_argument(
        "--tool",
        default="termite",
        metavar="TOOL",
        help="registry name of the prover (default: termite; "
        "see `repro list-provers`)",
    )
    prove.add_argument(
        "--name", default=None, help="program name used in the result"
    )
    prove.add_argument(
        "--json",
        action="store_true",
        help="emit the full AnalysisResult as JSON (exactly round-trippable "
        "via AnalysisResult.from_json)",
    )
    _add_config_arguments(prove)
    prove.set_defaults(handler=command_prove)

    list_provers = subparsers.add_parser(
        "list-provers",
        help="list the registered provers",
        description="Every stable registry name with its summary.",
    )
    list_provers.add_argument("--json", action="store_true")
    list_provers.set_defaults(handler=command_list_provers)

    table1 = subparsers.add_parser(
        "table1",
        help="regenerate the paper's Table 1 over the bundled suites",
        description="Run every requested (suite, tool) cell through the "
        "crash-isolated parallel engine.",
    )
    add_table1_arguments(table1)
    table1.set_defaults(handler=command_table1)

    return parser


def main(argv=None) -> int:
    arguments = build_parser().parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
