"""Result collection and table rendering for the evaluation harness."""

from repro.reporting.runner import ProgramOutcome, SuiteReport, run_suite, TOOLS
from repro.reporting.table import format_table, format_table1_row

__all__ = [
    "ProgramOutcome",
    "SuiteReport",
    "run_suite",
    "TOOLS",
    "format_table",
    "format_table1_row",
]
