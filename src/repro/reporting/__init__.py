"""Result collection and table rendering for the evaluation harness."""

from repro.reporting.parallel import TaskResult, run_tasks
from repro.reporting.runner import (
    ProgramOutcome,
    SuiteReport,
    TOOLS,
    reports_to_json_dict,
    run_suite,
    run_table1,
)
from repro.reporting.table import format_table, format_table1_row

__all__ = [
    "ProgramOutcome",
    "SuiteReport",
    "TaskResult",
    "run_suite",
    "run_table1",
    "run_tasks",
    "reports_to_json_dict",
    "TOOLS",
    "format_table",
    "format_table1_row",
]
