"""Run the provers over benchmark suites and aggregate Table-1 statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    eager_farkas_lexicographic,
    eager_generator_synthesis,
    heuristic_prover,
    podelski_rybalchenko,
)
from repro.benchsuite.program import BenchmarkProgram
from repro.core.lp_instance import LpStatistics
from repro.core.termination import TerminationProver


def _run_termite(program: BenchmarkProgram) -> "ProgramOutcome":
    prover = TerminationProver(program.build(), check_certificates=False)
    result = prover.prove()
    return ProgramOutcome(
        program=program.name,
        proved=result.proved,
        time_seconds=result.time_seconds,
        lp_statistics=result.lp_statistics,
    )


def _run_baseline(builder: Callable, program: BenchmarkProgram) -> "ProgramOutcome":
    prover = TerminationProver(program.build(), check_certificates=False)
    problem = prover.build_problem()
    start = time.perf_counter()
    result = builder(problem)
    elapsed = time.perf_counter() - start
    return ProgramOutcome(
        program=program.name,
        proved=result.proved,
        time_seconds=elapsed,
        lp_statistics=result.lp_statistics,
    )


#: The tool column of Table 1 mapped onto the reproduction's provers.
TOOLS: Dict[str, Callable[[BenchmarkProgram], "ProgramOutcome"]] = {
    "termite": _run_termite,
    "heuristic": lambda program: _run_baseline(heuristic_prover, program),
    "eager-farkas": lambda program: _run_baseline(
        eager_farkas_lexicographic, program
    ),
    "eager-generators": lambda program: _run_baseline(
        eager_generator_synthesis, program
    ),
    "podelski-rybalchenko": lambda program: _run_baseline(
        podelski_rybalchenko, program
    ),
}


@dataclass
class ProgramOutcome:
    """Result of one tool on one benchmark."""

    program: str
    proved: bool
    time_seconds: float
    lp_statistics: LpStatistics = field(default_factory=LpStatistics)
    error: Optional[str] = None


@dataclass
class SuiteReport:
    """Aggregate of one tool over one suite (one cell row of Table 1)."""

    suite: str
    tool: str
    outcomes: List[ProgramOutcome] = field(default_factory=list)
    unsound: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def successes(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.proved)

    @property
    def average_time_ms(self) -> float:
        if not self.outcomes:
            return 0.0
        return 1000.0 * sum(o.time_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def average_lp_rows(self) -> float:
        sizes = [
            o.lp_statistics.average_rows
            for o in self.outcomes
            if o.lp_statistics.instances
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @property
    def average_lp_cols(self) -> float:
        sizes = [
            o.lp_statistics.average_cols
            for o in self.outcomes
            if o.lp_statistics.instances
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0


def run_suite(
    suite: str,
    programs: Sequence[BenchmarkProgram],
    tool: str = "termite",
    limit: Optional[int] = None,
) -> SuiteReport:
    """Run *tool* over *programs* and aggregate the Table-1 statistics.

    ``limit`` restricts the run to the first *limit* programs (used by the
    pytest-benchmark harness to keep wall-clock time reasonable; the full
    sweep is available through ``benchmarks/table1.py``).
    """
    if tool not in TOOLS:
        raise KeyError("unknown tool %r (available: %s)" % (tool, ", ".join(TOOLS)))
    runner = TOOLS[tool]
    selected = list(programs if limit is None else programs[:limit])
    report = SuiteReport(suite=suite, tool=tool)
    for program in selected:
        try:
            outcome = runner(program)
        except Exception as error:  # a prover crash counts as "not proved"
            outcome = ProgramOutcome(
                program=program.name,
                proved=False,
                time_seconds=0.0,
                error=str(error),
            )
        report.outcomes.append(outcome)
        if outcome.proved and not program.terminating:
            report.unsound.append(program.name)
    return report
