"""Run the provers over benchmark suites and aggregate Table-1 statistics.

The engine behind ``benchmarks/table1.py`` and the CI benchmark smoke job:
every (suite, tool, program) cell becomes one task for the crash-isolated
parallel engine of :mod:`repro.reporting.parallel`, with a per-program
wall-clock timeout and deterministic result ordering.  A prover crash or
timeout records a failed :class:`ProgramOutcome` instead of aborting the
table, and the whole run serialises to machine-readable JSON for CI.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    eager_farkas_lexicographic,
    eager_generator_synthesis,
    heuristic_prover,
    podelski_rybalchenko,
)
from repro.benchsuite.program import BenchmarkProgram
from repro.core.lp_instance import LpStatistics
from repro.core.termination import TerminationProver
from repro.reporting.parallel import TaskResult, run_tasks


def _run_termite(
    program: BenchmarkProgram, lp_mode: str = "incremental"
) -> "ProgramOutcome":
    prover = TerminationProver(
        program.build(), check_certificates=False, lp_mode=lp_mode
    )
    result = prover.prove()
    return ProgramOutcome(
        program=program.name,
        proved=result.proved,
        time_seconds=result.time_seconds,
        lp_statistics=result.lp_statistics,
    )


def _run_baseline(
    builder: Callable, program: BenchmarkProgram, lp_mode: str = "incremental"
) -> "ProgramOutcome":
    prover = TerminationProver(program.build(), check_certificates=False)
    problem = prover.build_problem()
    start = time.perf_counter()
    result = builder(problem)
    elapsed = time.perf_counter() - start
    return ProgramOutcome(
        program=program.name,
        proved=result.proved,
        time_seconds=elapsed,
        lp_statistics=result.lp_statistics,
    )


#: The tool column of Table 1 mapped onto the reproduction's provers.
#: Every entry accepts ``(program, lp_mode)``; only termite uses the mode.
TOOLS: Dict[str, Callable[..., "ProgramOutcome"]] = {
    "termite": _run_termite,
    "heuristic": functools.partial(_run_baseline, heuristic_prover),
    "eager-farkas": functools.partial(_run_baseline, eager_farkas_lexicographic),
    "eager-generators": functools.partial(
        _run_baseline, eager_generator_synthesis
    ),
    "podelski-rybalchenko": functools.partial(
        _run_baseline, podelski_rybalchenko
    ),
}


@dataclass
class ProgramOutcome:
    """Result of one tool on one benchmark."""

    program: str
    proved: bool
    time_seconds: float
    lp_statistics: LpStatistics = field(default_factory=LpStatistics)
    error: Optional[str] = None
    timed_out: bool = False

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "proved": self.proved,
            "time_ms": round(self.time_seconds * 1000.0, 3),
            "error": self.error,
            "timed_out": self.timed_out,
            "lp": {
                "instances": self.lp_statistics.instances,
                "average_rows": self.lp_statistics.average_rows,
                "average_cols": self.lp_statistics.average_cols,
                "max_rows": self.lp_statistics.max_rows,
                "max_cols": self.lp_statistics.max_cols,
                "pivots": self.lp_statistics.pivots,
                "warm_solves": self.lp_statistics.warm_solves,
                "cold_solves": self.lp_statistics.cold_solves,
            },
        }


@dataclass
class SuiteReport:
    """Aggregate of one tool over one suite (one cell row of Table 1)."""

    suite: str
    tool: str
    outcomes: List[ProgramOutcome] = field(default_factory=list)
    unsound: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def successes(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.proved)

    @property
    def failures(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.error is not None)

    @property
    def timeouts(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.timed_out)

    @property
    def average_time_ms(self) -> float:
        if not self.outcomes:
            return 0.0
        return 1000.0 * sum(o.time_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def average_lp_rows(self) -> float:
        sizes = [
            o.lp_statistics.average_rows
            for o in self.outcomes
            if o.lp_statistics.instances
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @property
    def average_lp_cols(self) -> float:
        sizes = [
            o.lp_statistics.average_cols
            for o in self.outcomes
            if o.lp_statistics.instances
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @property
    def total_pivots(self) -> int:
        return sum(o.lp_statistics.pivots for o in self.outcomes)

    @property
    def warm_solves(self) -> int:
        return sum(o.lp_statistics.warm_solves for o in self.outcomes)

    @property
    def cold_solves(self) -> int:
        return sum(o.lp_statistics.cold_solves for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "tool": self.tool,
            "total": self.total,
            "successes": self.successes,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "unsound": list(self.unsound),
            "average_time_ms": round(self.average_time_ms, 3),
            "average_lp_rows": round(self.average_lp_rows, 3),
            "average_lp_cols": round(self.average_lp_cols, 3),
            "total_pivots": self.total_pivots,
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


def _execute_program(
    tool: str, program: BenchmarkProgram, lp_mode: str
) -> ProgramOutcome:
    """Run one (tool, program) cell; never raises."""
    try:
        return TOOLS[tool](program, lp_mode=lp_mode)
    except Exception as error:  # a prover crash counts as "not proved"
        return ProgramOutcome(
            program=program.name,
            proved=False,
            time_seconds=0.0,
            error="%s: %s" % (type(error).__name__, error),
        )


def _outcome_from_result(
    result: TaskResult, program: BenchmarkProgram, timeout: Optional[float]
) -> ProgramOutcome:
    """Unwrap a parallel-engine envelope into a ProgramOutcome."""
    if result.ok:
        return result.value
    if result.kind == "timeout":
        return ProgramOutcome(
            program=program.name,
            proved=False,
            time_seconds=result.elapsed,
            error="timeout after %.1fs" % (timeout or result.elapsed),
            timed_out=True,
        )
    return ProgramOutcome(
        program=program.name,
        proved=False,
        time_seconds=result.elapsed,
        error=result.message or result.kind,
    )


def select_programs(
    programs: Sequence[BenchmarkProgram],
    limit: Optional[int] = None,
    name_filter: Optional[str] = None,
) -> List[BenchmarkProgram]:
    """Apply the harness' program filters (substring match, then limit)."""
    selected = list(programs)
    if name_filter:
        selected = [p for p in selected if name_filter in p.name]
    if limit is not None:
        selected = selected[: max(0, limit)]
    return selected


def _collate(
    cells: List[tuple],
    results: List[TaskResult],
    timeout: Optional[float],
) -> List[SuiteReport]:
    """Group flat (cell, result) pairs back into per-(suite, tool) reports."""
    reports: List[SuiteReport] = []
    by_key: Dict[tuple, SuiteReport] = {}
    for (suite, tool, program), result in zip(cells, results):
        key = (suite, tool)
        report = by_key.get(key)
        if report is None:
            report = SuiteReport(suite=suite, tool=tool)
            by_key[key] = report
            reports.append(report)
        outcome = _outcome_from_result(result, program, timeout)
        report.outcomes.append(outcome)
        if outcome.proved and not program.terminating:
            report.unsound.append(program.name)
    return reports


def run_suite(
    suite: str,
    programs: Sequence[BenchmarkProgram],
    tool: str = "termite",
    limit: Optional[int] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    lp_mode: str = "incremental",
) -> SuiteReport:
    """Run *tool* over *programs* and aggregate the Table-1 statistics.

    ``limit`` restricts the run to the first *limit* programs; ``jobs``
    runs that many programs concurrently in crash-isolated processes;
    ``timeout`` kills any single program after that many wall-clock
    seconds and records a failed outcome in its place.  An empty (or
    fully filtered) suite yields an empty report, not an error.
    """
    if tool not in TOOLS:
        raise KeyError("unknown tool %r (available: %s)" % (tool, ", ".join(TOOLS)))
    selected = select_programs(programs, limit)
    cells = [(suite, tool, program) for program in selected]
    thunks = [
        functools.partial(_execute_program, tool, program, lp_mode)
        for program in selected
    ]
    results = run_tasks(thunks, jobs=jobs, timeout=timeout)
    reports = _collate(cells, results, timeout)
    return reports[0] if reports else SuiteReport(suite=suite, tool=tool)


def run_table1(
    suites: Dict[str, Sequence[BenchmarkProgram]],
    tools: Sequence[str],
    limit: Optional[int] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    lp_mode: str = "incremental",
    name_filter: Optional[str] = None,
) -> List[SuiteReport]:
    """Run every (suite, tool) cell of Table 1 through one shared task pool.

    All programs of all cells are flattened into a single task list so the
    worker pool stays saturated across suite boundaries; the reports come
    back grouped and ordered by (suite, tool) submission order.
    """
    for tool in tools:
        if tool not in TOOLS:
            raise KeyError(
                "unknown tool %r (available: %s)" % (tool, ", ".join(TOOLS))
            )
    cells: List[tuple] = []
    thunks: List[Callable[[], ProgramOutcome]] = []
    ordered_keys: List[tuple] = []
    for suite, programs in suites.items():
        selected = select_programs(programs, limit, name_filter)
        for tool in tools:
            ordered_keys.append((suite, tool))
            for program in selected:
                cells.append((suite, tool, program))
                thunks.append(
                    functools.partial(_execute_program, tool, program, lp_mode)
                )
    results = run_tasks(thunks, jobs=jobs, timeout=timeout)
    reports = _collate(cells, results, timeout)
    # Cells whose selection came up empty still deserve an (empty) row.
    present = {(report.suite, report.tool) for report in reports}
    for suite, tool in ordered_keys:
        if (suite, tool) not in present:
            reports.append(SuiteReport(suite=suite, tool=tool))
    reports.sort(key=lambda r: ordered_keys.index((r.suite, r.tool)))
    return reports


def reports_to_json_dict(
    reports: Sequence[SuiteReport], meta: Optional[dict] = None
) -> dict:
    """The machine-readable run summary consumed by CI and the dashboards."""
    document = {
        "schema_version": 1,
        "generator": "repro.reporting.runner",
        "suites": [report.to_dict() for report in reports],
        "totals": {
            "programs": sum(report.total for report in reports),
            "successes": sum(report.successes for report in reports),
            "failures": sum(report.failures for report in reports),
            "timeouts": sum(report.timeouts for report in reports),
            "unsound": sum(len(report.unsound) for report in reports),
            "total_pivots": sum(report.total_pivots for report in reports),
            "warm_solves": sum(report.warm_solves for report in reports),
            "cold_solves": sum(report.cold_solves for report in reports),
        },
    }
    if meta:
        document["meta"] = dict(meta)
    return document
