"""Run the provers over benchmark suites and aggregate Table-1 statistics.

The engine behind ``benchmarks/table1.py``, ``repro table1`` and the CI
benchmark smoke job, rebuilt on the unified analysis API: tools are
resolved through the **prover registry** (:func:`repro.api.get_prover` —
no per-tool dispatch glue here), every outcome is a unified
:class:`~repro.api.result.AnalysisResult`, and each scheduled task is
*one program with all requested tools*, so the staged pipeline builds the
:class:`~repro.core.problem.TerminationProblem` (invariants, cut-set,
large blocks) **once per program** and shares it across tools — even
across worker-process boundaries.  The wall-clock that sharing saves is
reported in the JSON summary (``totals.problem_sharing``).

A prover crash or timeout records a failed outcome instead of aborting
the table, and the whole run serialises to machine-readable JSON for CI.
"""

from __future__ import annotations

import functools
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.api.config import AnalysisConfig
from repro.api.pipeline import (
    BUILD_STAGES,
    results_from_task,
    run_tools_on_program,
)
from repro.api.registry import available_provers, canonical_name, get_prover
from repro.api.result import AnalysisResult
from repro.benchsuite.program import BenchmarkProgram
from repro.reporting.parallel import run_tasks

#: Historical alias: the runner's per-program outcome **is** the unified
#: result type now.  Reading old code keeps working (``proved``,
#: ``time_seconds``, ``lp_statistics``, ``error``, ``timed_out`` are all
#: present), but the old constructor shape is gone — ``proved`` is a
#: derived property of ``status``, not an ``__init__`` argument.  See
#: ``docs/MIGRATION.md``.
ProgramOutcome = AnalysisResult

class _ToolsView(Mapping):
    """A live, read-only view of the prover registry.

    Always consistent with :func:`repro.api.available_provers` — provers
    registered after import appear immediately.  Note this intentionally
    differs from the pre-registry shape: keys are canonical underscore
    names (hyphenated spellings still resolve on lookup) and the values
    are :class:`~repro.api.registry.Prover` objects, not
    ``(program, lp_mode)`` callables — see ``docs/MIGRATION.md``.
    """

    def __getitem__(self, name: str):
        return get_prover(name)

    def __iter__(self) -> Iterator[str]:
        return iter(available_provers())

    def __len__(self) -> int:
        return len(available_provers())

    def __repr__(self) -> str:
        return "TOOLS(%s)" % ", ".join(available_provers())


#: The tool column of Table 1 (registry name → prover object), as a live
#: registry view.  Scheduling goes through the registry.
TOOLS: Mapping = _ToolsView()


def _benchmark_config(
    lp_mode: str, config: Optional[AnalysisConfig], kernel: str = "auto"
) -> AnalysisConfig:
    """The effective benchmark config.

    With no explicit *config*, benchmark runs measure synthesis, not the
    (separately tested) certifier.  A non-default *lp_mode* or *kernel*
    combined with an explicit *config* is rejected rather than silently
    dropped — a mislabelled warm-vs-cold (or packed-vs-exact) ablation
    is worse than an error.
    """
    if config is not None:
        if lp_mode != "incremental":
            raise ValueError(
                "pass lp_mode inside the explicit config (got lp_mode=%r "
                "alongside config with lp_mode=%r)" % (lp_mode, config.lp_mode)
            )
        if kernel != "auto":
            raise ValueError(
                "pass kernel inside the explicit config (got kernel=%r "
                "alongside config with kernel=%r)" % (kernel, config.kernel)
            )
        return config
    return AnalysisConfig(
        lp_mode=lp_mode, kernel=kernel, check_certificates=False
    )


@dataclass
class SuiteReport:
    """Aggregate of one tool over one suite (one cell row of Table 1)."""

    suite: str
    tool: str
    outcomes: List[AnalysisResult] = field(default_factory=list)
    unsound: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def successes(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.proved)

    @property
    def failures(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.error is not None)

    @property
    def timeouts(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.timed_out)

    @property
    def average_time_ms(self) -> float:
        if not self.outcomes:
            return 0.0
        return 1000.0 * sum(o.time_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def average_lp_rows(self) -> float:
        sizes = [
            o.lp_statistics.average_rows
            for o in self.outcomes
            if o.lp_statistics.instances
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @property
    def average_lp_cols(self) -> float:
        sizes = [
            o.lp_statistics.average_cols
            for o in self.outcomes
            if o.lp_statistics.instances
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @property
    def total_pivots(self) -> int:
        return sum(o.lp_statistics.pivots for o in self.outcomes)

    @property
    def warm_solves(self) -> int:
        return sum(o.lp_statistics.warm_solves for o in self.outcomes)

    @property
    def cold_solves(self) -> int:
        return sum(o.lp_statistics.cold_solves for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "tool": self.tool,
            "total": self.total,
            "successes": self.successes,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "unsound": list(self.unsound),
            "average_time_ms": round(self.average_time_ms, 3),
            "average_lp_rows": round(self.average_lp_rows, 3),
            "average_lp_cols": round(self.average_lp_cols, 3),
            "total_pivots": self.total_pivots,
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


def select_programs(
    programs: Sequence[BenchmarkProgram],
    limit: Optional[int] = None,
    name_filter: Optional[str] = None,
) -> List[BenchmarkProgram]:
    """Apply the harness' program filters (substring match, then limit)."""
    selected = list(programs)
    if name_filter:
        selected = [p for p in selected if name_filter in p.name]
    if limit is not None:
        selected = selected[: max(0, limit)]
    return selected


def _run_cells(
    cells: List[tuple],
    tools: List[str],
    config: AnalysisConfig,
    jobs: int,
    timeout: Optional[float],
) -> Dict[tuple, List[AnalysisResult]]:
    """Execute ``(suite, index, program)`` cells; each runs *all* tools
    sharing one built problem.  Returns per-cell result lists aligned
    with *tools*, keyed by ``(suite, index)`` (positions, not names — two
    same-named programs must not collide)."""
    thunks = [
        functools.partial(run_tools_on_program, program, tools, config)
        for _suite, _index, program in cells
    ]
    tasks = run_tasks(thunks, jobs=jobs, timeout=timeout)
    outcomes: Dict[tuple, List[AnalysisResult]] = {}
    for (suite, index, program), task in zip(cells, tasks):
        outcomes[(suite, index)] = results_from_task(
            task, tools, program.name, timeout
        )
    return outcomes


def _collate(
    suites_programs: Dict[str, List[BenchmarkProgram]],
    tools: List[str],
    cell_outcomes: Dict[tuple, List[AnalysisResult]],
) -> List[SuiteReport]:
    """Group per-program result lists into (suite, tool) reports, ordered
    suite-major then tool, with programs in selection order."""
    reports: List[SuiteReport] = []
    for suite, programs in suites_programs.items():
        for position, tool in enumerate(tools):
            report = SuiteReport(suite=suite, tool=tool)
            for index, program in enumerate(programs):
                outcome = cell_outcomes[(suite, index)][position]
                report.outcomes.append(outcome)
                if outcome.proved and not program.terminating:
                    report.unsound.append(program.name)
            reports.append(report)
    return reports


def run_suite(
    suite: str,
    programs: Sequence[BenchmarkProgram],
    tool: str = "termite",
    limit: Optional[int] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    lp_mode: str = "incremental",
    config: Optional[AnalysisConfig] = None,
) -> SuiteReport:
    """Run *tool* over *programs* and aggregate the Table-1 statistics.

    ``limit`` restricts the run to the first *limit* programs; ``jobs``
    runs that many programs concurrently in crash-isolated processes;
    ``timeout`` kills any single program after that many wall-clock
    seconds and records a failed outcome in its place.  An empty (or
    fully filtered) suite yields an empty report, not an error.
    """
    tools = [canonical_name(tool)]
    selected = select_programs(programs, limit)
    cells = [(suite, index, program) for index, program in enumerate(selected)]
    cell_outcomes = _run_cells(
        cells, tools, _benchmark_config(lp_mode, config), jobs, timeout
    )
    reports = _collate({suite: selected}, tools, cell_outcomes)
    return reports[0]


def run_table1(
    suites: Dict[str, Sequence[BenchmarkProgram]],
    tools: Sequence[str],
    limit: Optional[int] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    lp_mode: str = "incremental",
    name_filter: Optional[str] = None,
    config: Optional[AnalysisConfig] = None,
    kernel: str = "auto",
) -> List[SuiteReport]:
    """Run every (suite, tool) cell of Table 1 through one shared task pool.

    One task per *program* covers **all requested tools**: the termination
    problem (invariants + large blocks) is built once inside the worker
    and shared, instead of being rebuilt per tool — the historical
    behaviour this replaces.  ``timeout`` is therefore the per-program
    budget across its tools.  Reports come back grouped and ordered by
    (suite, tool) submission order, programs in selection order,
    deterministically regardless of ``jobs``.
    """
    canonical = [canonical_name(tool) for tool in tools]
    selected_by_suite = {
        suite: select_programs(programs, limit, name_filter)
        for suite, programs in suites.items()
    }
    cells = [
        (suite, index, program)
        for suite, programs in selected_by_suite.items()
        for index, program in enumerate(programs)
    ]
    cell_outcomes = _run_cells(
        cells, canonical, _benchmark_config(lp_mode, config, kernel), jobs, timeout
    )
    return _collate(selected_by_suite, canonical, cell_outcomes)


def _problem_sharing_totals(reports: Sequence[SuiteReport]) -> dict:
    """How much wall-clock the shared problem build saved.

    Outcomes of the same (suite, program) across tools carry identical
    build-stage timings (the build ran once); every tool beyond the first
    therefore avoided one rebuild worth ``build_seconds``.  Programs are
    identified by their position within the suite's outcome list (aligned
    across that suite's tools), not by name — two same-named programs
    must not be merged.
    """
    by_program: Dict[tuple, List[AnalysisResult]] = {}
    for report in reports:
        for position, outcome in enumerate(report.outcomes):
            if outcome.stages:  # failed envelopes carry no stage breakdown
                by_program.setdefault((report.suite, position), []).append(
                    outcome
                )
    builds = 0
    reuses = 0
    seconds_saved = 0.0
    for outcomes in by_program.values():
        build_seconds = sum(
            outcomes[0].stage_seconds(stage) for stage in BUILD_STAGES
        )
        builds += 1
        reuses += len(outcomes) - 1
        seconds_saved += build_seconds * (len(outcomes) - 1)
    return {
        "problem_builds": builds,
        "rebuilds_avoided": reuses,
        "seconds_saved": round(seconds_saved, 6),
    }


def reports_to_json_dict(
    reports: Sequence[SuiteReport], meta: Optional[dict] = None
) -> dict:
    """The machine-readable run summary consumed by CI and the dashboards.

    ``schema_version`` 2: outcomes are full
    :meth:`~repro.api.result.AnalysisResult.to_dict` documents (supersets
    of the v1 shape) and ``totals.problem_sharing`` reports the wall-clock
    saved by building each program's termination problem once across
    tools.
    """
    document = {
        "schema_version": 2,
        "generator": "repro.reporting.runner",
        "suites": [report.to_dict() for report in reports],
        "totals": {
            "programs": sum(report.total for report in reports),
            "successes": sum(report.successes for report in reports),
            "failures": sum(report.failures for report in reports),
            "timeouts": sum(report.timeouts for report in reports),
            "unsound": sum(len(report.unsound) for report in reports),
            "total_pivots": sum(report.total_pivots for report in reports),
            "warm_solves": sum(report.warm_solves for report in reports),
            "cold_solves": sum(report.cold_solves for report in reports),
            "problem_sharing": _problem_sharing_totals(reports),
        },
    }
    if meta:
        document["meta"] = dict(meta)
    return document
