"""A crash-isolated parallel task engine with per-task wall-clock timeouts.

The benchmark harness needs three guarantees that a plain
``concurrent.futures`` pool does not give:

* **hard timeouts** — a prover stuck in an SMT loop must be killed, not
  merely abandoned (a pool worker would stay busy forever);
* **crash isolation** — a segfault, ``os._exit`` or unpicklable exception
  in one benchmark must surface as a failed result, not take the whole
  table down;
* **deterministic ordering** — results come back in submission order
  regardless of completion order, so two runs of the same table are
  diffable.

Each task therefore runs in its own (fork-started, daemonic) process that
reports back over a pipe; the parent multiplexes the pipes with
:func:`multiprocessing.connection.wait` and enforces deadlines.  With
``jobs <= 1`` and no timeout the tasks run inline — same semantics, no
process overhead — which keeps the unit-test path cheap.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, List, Optional, Sequence

#: How long (seconds) a terminated worker gets to exit before SIGKILL.
_TERMINATE_GRACE = 2.0


@dataclass
class TaskResult:
    """Envelope for one task: exactly one of the kinds below.

    ``kind`` is ``"ok"`` (``value`` holds the task's return value),
    ``"error"`` (``message`` holds the formatted exception), ``"timeout"``
    (the deadline passed and the worker was killed) or ``"crash"`` (the
    worker died without reporting — segfault, ``os._exit``, OOM kill).
    """

    kind: str
    value: Any = None
    message: str = ""
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


def _run_thunk(thunk: Callable[[], Any]) -> TaskResult:
    """Run a task inline.  Ordinary exceptions become error results;
    KeyboardInterrupt/SystemExit propagate so Ctrl-C still aborts an
    inline sweep (the worker-process path catches them separately)."""
    start = time.perf_counter()
    try:
        value = thunk()
    except Exception as error:  # isolate the harness from task bugs
        return TaskResult(
            kind="error",
            message="%s: %s" % (type(error).__name__, error),
            elapsed=time.perf_counter() - start,
        )
    return TaskResult(kind="ok", value=value, elapsed=time.perf_counter() - start)


def _worker(connection, thunk: Callable[[], Any]) -> None:
    start = time.perf_counter()
    try:
        result = _run_thunk(thunk)
    except BaseException as error:  # the process is disposable: report, don't die
        result = TaskResult(
            kind="error",
            message="%s: %s" % (type(error).__name__, error),
            elapsed=time.perf_counter() - start,
        )
    try:
        connection.send(result)
    except Exception as error:  # e.g. the task's return value is unpicklable
        connection.send(
            TaskResult(
                kind="error",
                message="result not transferable: %s" % error,
                elapsed=result.elapsed,
            )
        )
    finally:
        connection.close()


class _ActiveTask:
    __slots__ = ("index", "process", "connection", "started", "deadline")

    def __init__(self, index, process, connection, started, deadline):
        self.index = index
        self.process = process
        self.connection = connection
        self.started = started
        self.deadline = deadline


def _reap(task: _ActiveTask) -> TaskResult:
    """Collect the result of a task whose pipe became readable."""
    try:
        result = task.connection.recv()
    except EOFError:
        exit_code = task.process.exitcode
        result = TaskResult(
            kind="crash",
            message="worker exited without reporting (exit code %s)" % exit_code,
            elapsed=time.monotonic() - task.started,
        )
    task.process.join()
    task.connection.close()
    return result


def _kill(task: _ActiveTask) -> None:
    task.process.terminate()
    task.process.join(_TERMINATE_GRACE)
    if task.process.is_alive():
        task.process.kill()
        task.process.join()
    task.connection.close()


def run_tasks(
    thunks: Sequence[Callable[[], Any]],
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List[TaskResult]:
    """Run *thunks* with up to *jobs* concurrent worker processes.

    Returns one :class:`TaskResult` per thunk, **in submission order**.
    ``timeout`` is a per-task wall-clock budget in seconds; a task that
    exceeds it is killed and reported as ``kind="timeout"``.  With
    ``jobs <= 1`` and no timeout everything runs inline in this process.
    """
    jobs = max(1, int(jobs))
    if jobs == 1 and timeout is None:
        return [_run_thunk(thunk) for thunk in thunks]

    start_methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in start_methods else "spawn"
    )

    results: List[Optional[TaskResult]] = [None] * len(thunks)
    queue = list(enumerate(thunks))
    next_task = 0
    active: List[_ActiveTask] = []

    while next_task < len(queue) or active:
        while next_task < len(queue) and len(active) < jobs:
            index, thunk = queue[next_task]
            next_task += 1
            parent_end, child_end = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker, args=(child_end, thunk), daemon=True
            )
            process.start()
            child_end.close()
            now = time.monotonic()
            active.append(
                _ActiveTask(
                    index,
                    process,
                    parent_end,
                    now,
                    now + timeout if timeout is not None else None,
                )
            )

        now = time.monotonic()
        wait_budget: Optional[float] = None
        if timeout is not None:
            nearest = min(task.deadline for task in active)
            wait_budget = max(0.0, nearest - now)
        ready = _wait_connections(
            [task.connection for task in active], timeout=wait_budget
        )

        still_active: List[_ActiveTask] = []
        now = time.monotonic()
        for task in active:
            if task.connection in ready:
                results[task.index] = _reap(task)
            elif task.deadline is not None and now >= task.deadline:
                _kill(task)
                results[task.index] = TaskResult(
                    kind="timeout", elapsed=now - task.started
                )
            else:
                still_active.append(task)
        active = still_active

    return [result for result in results if result is not None]


# ---------------------------------------------------------------------------
# The resident worker pool (the long-lived service variant of the engine)
# ---------------------------------------------------------------------------


def _default_context():
    start_methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in start_methods else "spawn"
    )


def _pool_worker_loop(connection, handler: Callable[[Any], Any]) -> None:
    """One resident worker: receive a message, run *handler*, reply.

    The loop ends on the ``None`` shutdown sentinel or when the parent's
    end of the pipe disappears.  Every reply is a :class:`TaskResult`
    envelope, so handler exceptions come back as ``kind="error"`` instead
    of killing the worker — the worker only dies on a genuine crash
    (segfault, ``os._exit``, OOM kill), which the parent detects as EOF.
    """
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        result = _run_thunk(lambda: handler(message))
        try:
            connection.send(result)
        except Exception as error:  # e.g. an unpicklable return value
            try:
                connection.send(
                    TaskResult(
                        kind="error",
                        message="result not transferable: %s" % error,
                        elapsed=result.elapsed,
                    )
                )
            except Exception:
                break
    try:
        connection.close()
    except Exception:
        pass


#: A worker dying sooner than this after spawn counts as a "fast death"
#: for the exponential respawn backoff (a crash-looping request class).
_FAST_DEATH_SECONDS = 5.0


class _PooledWorker:
    __slots__ = ("process", "connection", "slot", "spawned")

    def __init__(self, process, connection, slot, spawned):
        self.process = process
        self.connection = connection
        self.slot = slot
        self.spawned = spawned

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


class WorkerPool:
    """A fixed set of resident, crash-isolated worker processes.

    Where :func:`run_tasks` forks one disposable process per task (right
    for batch sweeps), the pool keeps ``jobs`` **pre-forked** workers
    alive across requests — each worker pays the interpreter/import cost
    once and keeps the prover registry, interned constraints and any
    warm per-process state resident.  This is the execution engine of the
    analysis service (:mod:`repro.service`).

    Guarantees, per :meth:`submit`:

    * **crash isolation** — a worker dying mid-request surfaces as a
      ``kind="crash"`` envelope and the worker is respawned; the pool is
      never poisoned;
    * **hard timeouts** — a request over its *timeout* kills the worker
      (``kind="timeout"``) and respawns it;
    * **thread safety** — :meth:`submit` may be called from many threads
      concurrently (the asyncio server does); each call exclusively
      leases one worker for the duration of the request.

    Supervision (the overload-hardening additions):

    * **respawn budgets** — each of the ``jobs`` worker slots may be
      respawned at most ``respawn_budget`` times; a slot that exhausts
      its budget is lost, and once every slot is lost :meth:`submit`
      fails fast with a ``kind="crash"`` envelope instead of blocking
      forever on an empty pool;
    * **exponential backoff** — a slot whose workers keep dying within
      :data:`_FAST_DEATH_SECONDS` of spawning is respawned after an
      exponentially growing delay (on a background timer, never blocking
      the caller), so a crash-looping request class cannot turn the
      parent into a fork bomb;
    * **hung-worker watchdog** — even with ``timeout=None``, a request
      older than ``hung_deadline`` SIGKILLs its worker and reports
      ``kind="timeout"``; a wedged worker can never hold a lease
      forever.
    """

    def __init__(
        self,
        handler: Callable[[Any], Any],
        jobs: int = 2,
        context=None,
        respawn_budget: int = 32,
        respawn_backoff: float = 0.05,
        respawn_backoff_max: float = 2.0,
        hung_deadline: Optional[float] = None,
    ):
        self._handler = handler
        self._context = context if context is not None else _default_context()
        self._jobs = max(1, int(jobs))
        self.respawn_budget = max(0, int(respawn_budget))
        self.respawn_backoff = max(0.0, float(respawn_backoff))
        self.respawn_backoff_max = max(0.0, float(respawn_backoff_max))
        self.hung_deadline = hung_deadline
        self._lock = threading.Lock()
        self._closed = False
        self._workers: List[_PooledWorker] = []
        self._idle: "queue.Queue[_PooledWorker]" = queue.Queue()
        self._slot_respawns = [0] * self._jobs
        self._slot_streak = [0] * self._jobs
        self._slot_lost = [False] * self._jobs
        self._hung_kills = 0
        self._timers: List[threading.Timer] = []
        for slot in range(self._jobs):
            self._idle.put(self._spawn(slot))

    # -- lifecycle ---------------------------------------------------------------

    def _spawn(self, slot: int) -> _PooledWorker:
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_pool_worker_loop,
            args=(child_end, self._handler),
            daemon=True,
        )
        process.start()
        child_end.close()
        worker = _PooledWorker(process, parent_end, slot, time.monotonic())
        with self._lock:
            self._workers.append(worker)
        return worker

    def _retire(self, worker: _PooledWorker, sigkill: bool = False) -> None:
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
        if sigkill:
            worker.process.kill()
            worker.process.join()
        else:
            worker.process.terminate()
            worker.process.join(_TERMINATE_GRACE)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
        try:
            worker.connection.close()
        except Exception:
            pass

    def _schedule_respawn(self, worker: _PooledWorker) -> None:
        """Refill *worker*'s slot — now, after a backoff, or never.

        Never blocks the caller: a backoff delay runs on a daemon timer
        so the response that triggered the respawn returns immediately.
        """
        slot = worker.slot
        now = time.monotonic()
        with self._lock:
            if self._closed or self._slot_lost[slot]:
                return
            if self._slot_respawns[slot] >= self.respawn_budget:
                self._slot_lost[slot] = True
                return
            self._slot_respawns[slot] += 1
            if now - worker.spawned < _FAST_DEATH_SECONDS:
                self._slot_streak[slot] += 1
            else:
                self._slot_streak[slot] = 0
            streak = self._slot_streak[slot]
        delay = 0.0
        if streak > 0 and self.respawn_backoff > 0:
            delay = min(
                self.respawn_backoff_max,
                self.respawn_backoff * (2.0 ** (streak - 1)),
            )
        if delay <= 0.0:
            self._idle.put(self._spawn(slot))
            return

        def _respawn_later() -> None:
            with self._lock:
                if self._closed:
                    return
            replacement = self._spawn(slot)
            with self._lock:
                closed = self._closed
            if closed:
                # shutdown() raced the spawn and has already drained
                # _workers; retire the fresh child ourselves so it is
                # never leaked.
                self._retire(replacement)
                return
            self._idle.put(replacement)

        timer = threading.Timer(delay, _respawn_later)
        timer.daemon = True
        with self._lock:
            self._timers = [t for t in self._timers if t.is_alive()]
            self._timers.append(timer)
        timer.start()

    @property
    def jobs(self) -> int:
        return self._jobs

    def pids(self) -> List[int]:
        """Pids of the currently live workers (for monitoring/tests)."""
        with self._lock:
            return [worker.pid for worker in self._workers if worker.pid]

    def capacity(self) -> int:
        """Worker slots that are still serviceable (live or respawnable)."""
        with self._lock:
            return sum(1 for lost in self._slot_lost if not lost)

    def stats(self) -> dict:
        with self._lock:
            return {
                "jobs": self._jobs,
                "workers_alive": len(self._workers),
                "slots_lost": sum(1 for lost in self._slot_lost if lost),
                "respawns": sum(self._slot_respawns),
                "respawn_budget": self.respawn_budget,
                "hung_kills": self._hung_kills,
            }

    # -- execution ---------------------------------------------------------------

    def submit(self, message: Any, timeout: Optional[float] = None) -> TaskResult:
        """Run *message* through one worker; always returns an envelope."""
        worker = self._lease()
        if worker is None:
            with self._lock:
                closed = self._closed
            return TaskResult(
                kind="crash",
                message="pool is shut down"
                if closed
                else "no workers left: every slot exhausted its respawn "
                "budget of %d" % self.respawn_budget,
            )
        started = time.monotonic()
        replace = False
        hung_kill = False
        # The watchdog: even an unbounded request may not hold a lease
        # past `hung_deadline` — the worker is SIGKILLed instead.
        effective = timeout if timeout is not None else self.hung_deadline
        try:
            try:
                worker.connection.send(message)
            except Exception as error:
                replace = True
                return TaskResult(
                    kind="crash",
                    message="worker unreachable: %s" % error,
                    elapsed=time.monotonic() - started,
                )
            try:
                if not worker.connection.poll(effective):
                    replace = True
                    elapsed = time.monotonic() - started
                    if timeout is None:
                        hung_kill = True
                        with self._lock:
                            self._hung_kills += 1
                        return TaskResult(
                            kind="timeout",
                            message="hung-worker watchdog fired after %.1fs "
                            "(worker SIGKILLed)" % elapsed,
                            elapsed=elapsed,
                        )
                    return TaskResult(kind="timeout", elapsed=elapsed)
                result = worker.connection.recv()
            except (EOFError, OSError):
                replace = True
                exit_code = worker.process.exitcode
                return TaskResult(
                    kind="crash",
                    message="worker died mid-request (exit code %s)" % exit_code,
                    elapsed=time.monotonic() - started,
                )
            if not isinstance(result, TaskResult):
                result = TaskResult(kind="ok", value=result)
            return result
        finally:
            if replace:
                self._retire(worker, sigkill=hung_kill)
                if not self._closed:
                    self._schedule_respawn(worker)
            else:
                self._idle.put(worker)

    def _lease(self) -> Optional[_PooledWorker]:
        """One idle worker, or ``None`` once the pool has no capacity.

        Polls rather than blocking forever: the pool can lose capacity
        (respawn budgets exhausting) while a caller waits.
        """
        while True:
            with self._lock:
                if self._closed or not any(
                    not lost for lost in self._slot_lost
                ):
                    return None
            try:
                return self._idle.get(timeout=0.1)
            except queue.Empty:
                continue

    # -- shutdown ----------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker.  Idempotent; in-flight requests should be
        drained first (the service does), stragglers are killed."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._workers = []
            timers = list(self._timers)
            self._timers = []
        for timer in timers:
            timer.cancel()
        for worker in workers:
            try:
                worker.connection.send(None)
            except Exception:
                pass
        deadline = time.monotonic() + _TERMINATE_GRACE
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.connection.close()
            except Exception:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
