"""The measured-performance micro-suite behind ``repro bench``.

Seven suites, cheapest first, each returning a plain dict that
serialises into ``BENCH_kernel.json``.  The goal is a *committed*
performance trajectory: every claim about the sparse scaled-integer
kernel — and about the CEGIS oracle/strategy ablation — is a number in
the repository, not an assertion in a docstring.

* ``kernel_rows`` — the raw row kernel: fused axpy/eliminate/dot on
  :class:`~repro.linalg.sparse.SparseRow` versus the same operations
  entry-by-entry on dense ``Fraction`` lists (the seed representation).
* ``simplex`` — a seeded batch of one-shot LPs plus one incrementally
  grown :class:`~repro.lp.simplex.SimplexState`, with pivot counts.
* ``projection`` — Fourier–Motzkin projections over seeded systems;
  reports the rows eliminated by the syntactic/Kohler layers and the LP
  calls they saved.
* ``table1_wtc`` — the end-to-end slice: the terminating WTC programs
  proved by the paper's lazy prover (the same slice
  ``bench_lp_size_rank_vs_termite.py`` measures), with total pivots.
* ``cegis_ablation`` — the same WTC slice once per counterexample
  oracle × strategy variant (extremal / arbitrary / random; SMT, DD
  enumeration, sampling), reporting iterations, LP rows and wall time —
  the paper's §4.2 ablation as one committed number series.
* ``kernel_packed`` — the packed int64 row kernel versus the exact
  bignum path on identical wide LP and Fourier–Motzkin workloads,
  asserting bit-identical outcomes before reporting the speedups.
* ``cex_batch_ablation`` — the batched-counterexample knob
  (``cex_batch`` ∈ {1, 2, 4, 8}) over the WTC slice: iterations, LP
  rows, dual-repair passes and wall time per batch size.

Reachable as ``repro bench``, ``python -m repro bench`` and
``python benchmarks/perf_kernel.py``.

JSON schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "quick": false,
      "suites": [
        {"suite": "...", "wall_seconds": ..., ...per-suite counters...},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from fractions import Fraction
from typing import Dict, List

SCHEMA_VERSION = 1


def _random_fraction(rng: random.Random) -> Fraction:
    if rng.random() < 0.4:
        return Fraction(0)
    return Fraction(rng.randint(-9, 9), rng.randint(1, 7))


def bench_kernel_rows(quick: bool = False, seed: int = 0) -> Dict:
    """Fused sparse row operations vs dense ``Fraction`` loops."""
    from repro.linalg.sparse import SparseRow

    rng = random.Random(seed)
    width = 24 if quick else 48
    pairs = 60 if quick else 300
    rounds = 3 if quick else 10

    dense_rows: List[List[Fraction]] = [
        [_random_fraction(rng) for _ in range(width)] for _ in range(pairs)
    ]
    factors = [
        Fraction(rng.randint(-5, 5), rng.randint(1, 4)) for _ in range(pairs)
    ]
    sparse_rows = [SparseRow.from_dense(row) for row in dense_rows]

    started = time.perf_counter()
    operations = 0
    for _ in range(rounds):
        for position in range(0, pairs - 1, 2):
            a = sparse_rows[position]
            b = sparse_rows[position + 1]
            a.combine(1, b, factors[position])
            a.dot(b)
            operations += 2
    sparse_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        for position in range(0, pairs - 1, 2):
            a = dense_rows[position]
            b = dense_rows[position + 1]
            factor = factors[position]
            [x + factor * y for x, y in zip(a, b)]
            sum((x * y for x, y in zip(a, b)), Fraction(0))
    dense_seconds = time.perf_counter() - started

    return {
        "suite": "kernel_rows",
        "wall_seconds": round(sparse_seconds, 4),
        "dense_wall_seconds": round(dense_seconds, 4),
        "speedup_vs_dense": round(dense_seconds / sparse_seconds, 2)
        if sparse_seconds
        else None,
        "operations": operations,
    }


def bench_simplex(quick: bool = False, seed: int = 0) -> Dict:
    """A seeded batch of exact LPs: one-shot solves plus one warm-started
    incrementally grown instance."""
    from repro.linexpr.expr import LinExpr, var
    from repro.lp.problem import Sense
    from repro.lp.simplex import SimplexState, solve_lp

    rng = random.Random(seed)
    instances = 8 if quick else 30
    size = 5 if quick else 8

    pivots = 0
    solved = 0
    started = time.perf_counter()
    for _ in range(instances):
        names = ["x%d" % i for i in range(size)]
        constraints = []
        for i in range(size):
            constraints.append(var(names[i]) >= -rng.randint(0, 5))
            constraints.append(var(names[i]) <= rng.randint(1, 9))
        for _ in range(size):
            terms = {
                name: Fraction(rng.randint(-3, 3))
                for name in rng.sample(names, 3)
            }
            constraints.append(
                LinExpr(terms) <= rng.randint(0, 12)
            )
        objective = LinExpr(
            {name: Fraction(rng.randint(-4, 4)) for name in names}
        )
        outcome = solve_lp(objective, constraints, Sense.MAXIMIZE)
        pivots += outcome.pivots
        solved += 1

    # Warm-started growth: one persistent LP, one row at a time — the
    # counterexample-loop access pattern of the paper's Algorithm 1.
    state = SimplexState(Sense.MAXIMIZE)
    growth = 10 if quick else 40
    objective = LinExpr()
    for j in range(growth):
        delta = "d%d" % j
        state.declare(delta, nonnegative=True)
        state.add_constraint(var(delta) <= 1)
        if j:
            state.add_constraint(
                var(delta) + var("d%d" % (j - 1)) * rng.randint(-2, 2)
                <= rng.randint(1, 4)
            )
        objective = objective + var(delta)
        state.set_objective(objective)
        state.solve()
        solved += 1
    pivots += state.total_pivots
    wall = time.perf_counter() - started

    return {
        "suite": "simplex",
        "wall_seconds": round(wall, 4),
        "lps_solved": solved,
        "pivots": pivots,
        "warm_solves": state.warm_solves,
    }


def bench_projection(quick: bool = False, seed: int = 0) -> Dict:
    """Seeded Fourier–Motzkin projections, counting pruned rows."""
    from repro.linexpr.constraint import Constraint, Relation
    from repro.linexpr.expr import LinExpr
    from repro.polyhedra import projection

    rng = random.Random(seed)
    systems = 10 if quick else 40
    names = ["a", "b", "c", "d", "e"]

    snapshot = projection.statistics.snapshot()
    started = time.perf_counter()
    for _ in range(systems):
        constraints = []
        for _ in range(rng.randint(4, 8)):
            terms = {
                name: Fraction(rng.randint(-3, 3))
                for name in rng.sample(names, rng.randint(1, 3))
            }
            constraints.append(
                Constraint(
                    LinExpr(terms, Fraction(rng.randint(-5, 5))), Relation.LE
                )
            )
        drop = rng.sample(names, rng.randint(1, 3))
        projection.fourier_motzkin(constraints, drop)
    wall = time.perf_counter() - started
    after = projection.statistics

    return {
        "suite": "projection",
        "wall_seconds": round(wall, 4),
        "systems": systems,
        "variables_eliminated": after.variables_eliminated - snapshot[0],
        "combinations": after.combinations - snapshot[1],
        "lp_calls": after.lp_calls - snapshot[2],
        "lp_calls_saved": after.lp_calls_saved - snapshot[3],
        "rows_eliminated": (
            after.rows_pruned_syntactic
            + after.rows_pruned_kohler
            - snapshot[4]
            - snapshot[5]
        ),
    }


def bench_table1_slice(quick: bool = False) -> Dict:
    """End-to-end: the terminating WTC slice through the lazy prover."""
    from repro.benchsuite import get_suite
    from repro.core.termination import TerminationProver

    programs = [p for p in get_suite("wtc") if p.terminating]
    programs = programs[:2] if quick else programs[:4]

    pivots = warm = cold = proved = 0
    rows = cols = instances = 0
    started = time.perf_counter()
    for program in programs:
        result = TerminationProver(
            program.build(), check_certificates=False
        ).prove()
        proved += int(result.proved)
        statistics = result.lp_statistics
        pivots += statistics.pivots
        warm += statistics.warm_solves
        cold += statistics.cold_solves
        rows += statistics.total_rows
        cols += statistics.total_cols
        instances += statistics.instances
    wall = time.perf_counter() - started

    return {
        "suite": "table1_wtc",
        "wall_seconds": round(wall, 4),
        "programs": len(programs),
        "proved": proved,
        "pivots": pivots,
        "warm_solves": warm,
        "cold_solves": cold,
        "average_lp_rows": round(rows / instances, 2) if instances else 0.0,
        "average_lp_cols": round(cols / instances, 2) if instances else 0.0,
    }


#: The oracle × strategy points of the ``cegis_ablation`` suite: the
#: paper's default, the two §4.2 counterexample-selection ablations, and
#: the two alternative oracles.
CEGIS_ABLATION_VARIANTS = (
    ("smt", "extremal"),
    ("smt", "arbitrary"),
    ("smt", "random"),
    ("dd", "extremal"),
    ("sampling", "random"),
)


def bench_cegis_ablation(quick: bool = False, seed: int = 0) -> Dict:
    """Extremal vs. arbitrary vs. random counterexamples, end to end.

    Runs the WTC Table-1 slice (the same terminating programs as
    ``table1_wtc``) through the lazy prover once per oracle × strategy
    variant and reports the quantities the paper's ablation compares:
    refinement iterations, LP rows (one per counterexample), and wall
    time.  Every variant must prove the same programs — the strategies
    change the *cost*, never the verdict.
    """
    from repro.api import AnalysisConfig, analyze
    from repro.benchsuite import get_suite

    programs = [p for p in get_suite("wtc") if p.terminating]
    programs = programs[:2] if quick else programs[:4]

    variants: List[Dict] = []
    total = 0.0
    for oracle, strategy in CEGIS_ABLATION_VARIANTS:
        config = AnalysisConfig(
            check_certificates=False,
            cex_oracle=oracle,
            cex_strategy=strategy,
            oracle_seed=seed,
        )
        proved = iterations = lp_rows = oracle_queries = 0
        started = time.perf_counter()
        for program in programs:
            result = analyze(
                program.build(), tool="termite", config=config,
                name=program.name,
            )
            proved += int(result.proved)
            iterations += result.iterations
            lp_rows += result.lp_statistics.cex_rows
            oracle_queries += result.lp_statistics.oracle_queries
        wall = time.perf_counter() - started
        total += wall
        variants.append(
            {
                "oracle": oracle,
                "strategy": strategy,
                "programs": len(programs),
                "proved": proved,
                "iterations": iterations,
                "lp_rows": lp_rows,
                "oracle_queries": oracle_queries,
                "wall_seconds": round(wall, 4),
            }
        )

    return {
        "suite": "cegis_ablation",
        "wall_seconds": round(total, 4),
        "programs": len(programs),
        "variants": variants,
    }


def _kernel_lp_instances(quick: bool, seed: int):
    """Seeded wide LPs in the packed kernel's winning regime.

    Box constraints plus a handful of dense ±1/±2 coupling rows — half of
    them origin-infeasible demand rows, so phase 1 has real work and the
    solve runs thousands of pivots.  Small coefficients keep the
    subdeterminants (and hence every tableau entry) inside int64 for the
    whole solve: zero overflow fallbacks, which is exactly the regime the
    packed representation is built for.  Dense large-coefficient rows
    would blow past int64 mid-solve and measure the fallback path
    instead.
    """
    from repro.linexpr.constraint import Constraint, Relation
    from repro.linexpr.expr import LinExpr

    rng = random.Random(seed)
    instances = 1 if quick else 2
    variables = 120 if quick else 200
    coupling = 12
    density = 0.7
    built = []
    for _ in range(instances):
        names = ["x%d" % i for i in range(variables)]
        constraints = []
        for name in names:
            constraints.append(
                Constraint(LinExpr({name: Fraction(-1)}), Relation.LE)
            )
            constraints.append(
                Constraint(
                    LinExpr({name: Fraction(1)}, Fraction(-rng.randint(5, 25))),
                    Relation.LE,
                )
            )
        for index in range(coupling):
            terms = {
                name: Fraction(rng.choice((-2, -1, 1, 2)))
                for name in names
                if rng.random() < density
            }
            if not terms:
                terms = {names[0]: Fraction(1)}
            if index % 2 == 0:
                # Demand row (sum ≥ rhs): the origin violates it, forcing
                # genuine phase-1 pivoting.
                constraints.append(
                    Constraint(
                        LinExpr(
                            {name: -c for name, c in terms.items()},
                            Fraction(rng.randint(2, variables // 2)),
                        ),
                        Relation.LE,
                    )
                )
            else:
                constraints.append(
                    Constraint(
                        LinExpr(
                            terms,
                            Fraction(-rng.randint(variables, 4 * variables)),
                        ),
                        Relation.LE,
                    )
                )
        objective = LinExpr(
            {name: Fraction(rng.randint(1, 3)) for name in names}
        )
        built.append((objective, constraints))
    return built


def _narrow_lp_instances(variables: int, instances: int, seed: int):
    """Seeded narrow LPs at WTC tableau scale (a handful of variables).

    Same box-plus-coupling shape as the wide batch, scaled down: the
    ranking LPs and SMT theory checks of the paper's corpus live at
    these widths, so this is the regime the ``auto`` crossover has to
    get right.
    """
    from repro.linexpr.constraint import Constraint, Relation
    from repro.linexpr.expr import LinExpr

    rng = random.Random(seed * 1000 + variables)
    coupling = max(3, variables // 3)
    built = []
    for _ in range(instances):
        names = ["x%d" % i for i in range(variables)]
        constraints = []
        for name in names:
            constraints.append(
                Constraint(LinExpr({name: Fraction(-1)}), Relation.LE)
            )
            constraints.append(
                Constraint(
                    LinExpr({name: Fraction(1)}, Fraction(-rng.randint(5, 25))),
                    Relation.LE,
                )
            )
        for index in range(coupling):
            terms = {
                name: Fraction(rng.choice((-2, -1, 1, 2)))
                for name in names
                if rng.random() < 0.8
            }
            if not terms:
                terms = {names[0]: Fraction(1)}
            if index % 2 == 0:
                constraints.append(
                    Constraint(
                        LinExpr(
                            {name: -c for name, c in terms.items()},
                            Fraction(rng.randint(2, max(2, variables // 2))),
                        ),
                        Relation.LE,
                    )
                )
            else:
                constraints.append(
                    Constraint(
                        LinExpr(
                            terms,
                            Fraction(-rng.randint(variables, 4 * variables)),
                        ),
                        Relation.LE,
                    )
                )
        objective = LinExpr(
            {name: Fraction(rng.randint(1, 3)) for name in names}
        )
        built.append((objective, constraints))
    return built


def _kernel_projection_systems(quick: bool, seed: int):
    """Seeded wide constraint systems for the packed FM comparison.

    Wide systems with small ±1/±2 coefficients: the eliminations *and*
    the redundancy LPs (which dominate FM wall time and inherit the
    kernel) both stay inside int64, so the packed rows never fall back.
    """
    from repro.linexpr.constraint import Constraint, Relation
    from repro.linexpr.expr import LinExpr

    rng = random.Random(seed + 1)
    systems = 1 if quick else 2
    rows = 36 if quick else 40
    eliminated = 3 if quick else 4
    names = ["v%d" % i for i in range(120)]
    built = []
    for _ in range(systems):
        constraints = []
        for _ in range(rows):
            terms = {
                name: Fraction(rng.choice((-2, -1, 1, 2)))
                for name in rng.sample(names, 12)
            }
            constraints.append(
                Constraint(
                    LinExpr(terms, Fraction(rng.randint(-9, 9))), Relation.LE
                )
            )
        built.append((constraints, names[:eliminated]))
    return built


def bench_kernel_packed(quick: bool = False, seed: int = 0) -> Dict:
    """Packed int64 kernel vs the exact bignum path, apples to apples.

    Runs the same seeded wide LP batch and the same wide Fourier–Motzkin
    projections under ``kernel="packed"`` and ``kernel="exact"`` and
    asserts **exact agreement** — identical statuses, optima, pivot
    counts and projected constraint sets — before reporting the
    speedups.  A disagreement raises instead of reporting a number: the
    packed kernel is a pure performance change or it is a bug.
    """
    from repro.linalg.packed import (
        numpy_available,
        overflow_fallbacks,
        reset_overflow_fallbacks,
    )
    from repro.lp.problem import Sense
    from repro.lp.simplex import solve_lp
    from repro.polyhedra.projection import fourier_motzkin

    if not numpy_available():
        return {
            "suite": "kernel_packed",
            "wall_seconds": 0.0,
            "skipped": "numpy unavailable (exact kernel only)",
        }

    lps = _kernel_lp_instances(quick, seed)
    projections = _kernel_projection_systems(quick, seed)
    reset_overflow_fallbacks()

    timings = {"packed": 0.0, "exact": 0.0}
    lp_outcomes: Dict[str, List] = {"packed": [], "exact": []}
    for kernel in ("exact", "packed"):
        started = time.perf_counter()
        for objective, constraints in lps:
            outcome = solve_lp(
                objective, constraints, Sense.MAXIMIZE, kernel=kernel
            )
            lp_outcomes[kernel].append(
                (outcome.status, outcome.objective, outcome.pivots)
            )
        timings[kernel] = time.perf_counter() - started
    if lp_outcomes["packed"] != lp_outcomes["exact"]:
        raise AssertionError("packed and exact kernels disagree on an LP")

    # WTC-scale narrow batch: 24 variables standard-form to ~75 columns,
    # the top of the corpus' ranking-LP width band (and squarely in the
    # width class ``auto`` sends to the stacked kernel).  The stacked
    # tableau must win here, or ``auto`` has no business picking it.
    narrow_lps = _narrow_lp_instances(
        24, 12 if quick else 36, seed + 7
    )
    narrow_timings = {"packed": 0.0, "exact": 0.0}
    narrow_outcomes: Dict[str, List] = {"packed": [], "exact": []}
    for kernel in ("exact", "packed"):
        started = time.perf_counter()
        for objective, constraints in narrow_lps:
            outcome = solve_lp(
                objective, constraints, Sense.MAXIMIZE, kernel=kernel
            )
            narrow_outcomes[kernel].append(
                (outcome.status, outcome.objective, outcome.pivots)
            )
        narrow_timings[kernel] = time.perf_counter() - started
    if narrow_outcomes["packed"] != narrow_outcomes["exact"]:
        raise AssertionError(
            "packed and exact kernels disagree on a narrow LP"
        )

    projection_timings = {"packed": 0.0, "exact": 0.0}
    projection_results: Dict[str, List] = {"packed": [], "exact": []}
    for kernel in ("exact", "packed"):
        started = time.perf_counter()
        for constraints, eliminate in projections:
            projected = fourier_motzkin(constraints, eliminate, kernel=kernel)
            projection_results[kernel].append(
                sorted(str(constraint) for constraint in projected)
            )
        projection_timings[kernel] = time.perf_counter() - started
    if projection_results["packed"] != projection_results["exact"]:
        raise AssertionError(
            "packed and exact kernels disagree on a projection"
        )

    pivots = sum(entry[2] for entry in lp_outcomes["packed"])
    return {
        "suite": "kernel_packed",
        "wall_seconds": round(
            timings["packed"]
            + timings["exact"]
            + narrow_timings["packed"]
            + narrow_timings["exact"]
            + projection_timings["packed"]
            + projection_timings["exact"],
            4,
        ),
        "lps_solved": len(lps),
        "pivots": pivots,
        "simplex_packed_seconds": round(timings["packed"], 4),
        "simplex_exact_seconds": round(timings["exact"], 4),
        "simplex_speedup": round(timings["exact"] / timings["packed"], 2)
        if timings["packed"]
        else None,
        "narrow_lps_solved": len(narrow_lps),
        "narrow_pivots": sum(
            entry[2] for entry in narrow_outcomes["packed"]
        ),
        "narrow_packed_seconds": round(narrow_timings["packed"], 4),
        "narrow_exact_seconds": round(narrow_timings["exact"], 4),
        "narrow_speedup": round(
            narrow_timings["exact"] / narrow_timings["packed"], 2
        )
        if narrow_timings["packed"]
        else None,
        "projections": len(projections),
        "projection_packed_seconds": round(projection_timings["packed"], 4),
        "projection_exact_seconds": round(projection_timings["exact"], 4),
        "projection_speedup": round(
            projection_timings["exact"] / projection_timings["packed"], 2
        )
        if projection_timings["packed"]
        else None,
        "overflow_fallbacks": overflow_fallbacks(),
        "verdicts_identical": True,
    }


#: The LP widths (variable counts) of the ``kernel_crossover`` sweep.
#: The sweep stops at 80 variables: past that, the dense ±1/±2
#: coupling rows of the narrow generator push mid-solve subdeterminants
#: over int64 and the measurement becomes a fallback storm rather than
#: a kernel comparison — the in-range wide regime is what
#: ``kernel_packed``'s 200-variable batch measures.
CROSSOVER_WIDTHS = (3, 5, 8, 12, 20, 40, 80)


def bench_kernel_crossover(quick: bool = False, seed: int = 0) -> Dict:
    """Stacked-vs-exact width sweep: where does the fast path start winning?

    Solves seeded LP batches at each width of :data:`CROSSOVER_WIDTHS`
    under both kernels, asserts identical statuses / optima / pivot
    counts per width, and reports the per-width speedup.  The
    ``crossover_width`` — the smallest width from which the stacked
    kernel never loses again — is what :data:`repro.linalg.packed.
    PACKED_MIN_WIDTH` (the ``auto`` threshold) is tuned against; the
    report carries both so a drift between them is visible in CI.
    """
    from repro.linalg.packed import PACKED_MIN_WIDTH, numpy_available
    from repro.lp.problem import Sense
    from repro.lp.simplex import solve_lp

    if not numpy_available():
        return {
            "suite": "kernel_crossover",
            "wall_seconds": 0.0,
            "skipped": "numpy unavailable (exact kernel only)",
        }

    widths = (5, 12, 40) if quick else CROSSOVER_WIDTHS
    wall = 0.0
    points = []
    for width in widths:
        instances = max(2, (48 if quick else 144) // width)
        lps = _narrow_lp_instances(width, instances, seed)
        timings = {"packed": 0.0, "exact": 0.0}
        outcomes: Dict[str, List] = {"packed": [], "exact": []}
        for kernel in ("exact", "packed"):
            started = time.perf_counter()
            for objective, constraints in lps:
                outcome = solve_lp(
                    objective, constraints, Sense.MAXIMIZE, kernel=kernel
                )
                outcomes[kernel].append(
                    (outcome.status, outcome.objective, outcome.pivots)
                )
            timings[kernel] = time.perf_counter() - started
        if outcomes["packed"] != outcomes["exact"]:
            raise AssertionError(
                "packed and exact kernels disagree at width %d" % width
            )
        wall += timings["packed"] + timings["exact"]
        points.append(
            {
                "width": width,
                "instances": instances,
                "pivots": sum(entry[2] for entry in outcomes["packed"]),
                "packed_seconds": round(timings["packed"], 4),
                "exact_seconds": round(timings["exact"], 4),
                "speedup": round(timings["exact"] / timings["packed"], 2)
                if timings["packed"]
                else None,
            }
        )

    # Smallest width from which the stacked kernel never loses again.
    crossover_width = None
    for index, point in enumerate(points):
        speedup = point["speedup"]
        if speedup is not None and speedup >= 1.0:
            tail = points[index:]
            if all(
                later["speedup"] is None or later["speedup"] >= 1.0
                for later in tail
            ):
                crossover_width = point["width"]
                break

    return {
        "suite": "kernel_crossover",
        "wall_seconds": round(wall, 4),
        "points": points,
        "crossover_width": crossover_width,
        "packed_min_width": PACKED_MIN_WIDTH,
        "verdicts_identical": True,
    }


#: The row-batch sizes of the ``cex_batch_ablation`` suite.
CEX_BATCH_POINTS = (1, 2, 4, 8)


def bench_cex_batch_ablation(quick: bool = False, seed: int = 0) -> Dict:
    """Batched refinement: ``cex_batch`` ∈ {1, 2, 4, 8} over the WTC slice.

    Each iteration of a ``cex_batch = k`` run appends up to ``k``
    counterexample rows and pays **one** dual-simplex repair pass (the
    multi-row repair of ``SimplexState``) instead of ``k``.  The DD
    enumeration oracle supplies many candidates per query, which is the
    regime batching targets.  Every point must prove the same programs —
    batching changes the cost, never the verdict.
    """
    from repro.api import AnalysisConfig, analyze
    from repro.benchsuite import get_suite

    programs = [p for p in get_suite("wtc") if p.terminating]
    programs = programs[:2] if quick else programs[:4]

    points: List[Dict] = []
    total = 0.0
    proved_by_batch = []
    for batch in CEX_BATCH_POINTS:
        config = AnalysisConfig(
            check_certificates=False,
            cex_oracle="dd",
            cex_batch=batch,
            oracle_seed=seed,
        )
        proved = iterations = lp_rows = 0
        pivots = warm = 0
        started = time.perf_counter()
        for program in programs:
            result = analyze(
                program.build(), tool="termite", config=config,
                name=program.name,
            )
            proved += int(result.proved)
            iterations += result.iterations
            lp_rows += result.lp_statistics.cex_rows
            pivots += result.lp_statistics.pivots
            warm += result.lp_statistics.warm_solves
        wall = time.perf_counter() - started
        total += wall
        proved_by_batch.append(proved)
        points.append(
            {
                "cex_batch": batch,
                "programs": len(programs),
                "proved": proved,
                "iterations": iterations,
                "lp_rows": lp_rows,
                "pivots": pivots,
                "warm_solves": warm,
                "wall_seconds": round(wall, 4),
            }
        )
    if len(set(proved_by_batch)) != 1:
        raise AssertionError(
            "cex_batch changed a verdict: proved counts %r" % proved_by_batch
        )

    return {
        "suite": "cex_batch_ablation",
        "wall_seconds": round(total, 4),
        "programs": len(programs),
        "points": points,
    }


def _percentile(values: List[float], fraction: float) -> float:
    """The *fraction* percentile (nearest-rank) of *values*, seconds."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = int(math.ceil(fraction * len(ordered)))
    return ordered[max(0, min(len(ordered), rank) - 1)]


def _drive_service_clients(
    host: str, port: int, batches: List[List[bytes]]
) -> List[float]:
    """Each batch on its own connection+thread; per-request latencies."""
    import socket

    latencies: List[float] = []
    lock = threading.Lock()
    errors: List[BaseException] = []

    def _client(lines: List[bytes]) -> None:
        try:
            with socket.create_connection((host, port)) as sock:
                stream = sock.makefile("rwb")
                for line in lines:
                    started = time.perf_counter()
                    stream.write(line)
                    stream.flush()
                    reply = stream.readline()
                    elapsed = time.perf_counter() - started
                    document = json.loads(reply)
                    if "error" in document:
                        raise RuntimeError(
                            "service error: %r" % (document["error"],)
                        )
                    with lock:
                        latencies.append(elapsed)
        except BaseException as error:  # surfaced to the bench below
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=_client, args=(batch,)) for batch in batches
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return latencies


def bench_service(quick: bool = False, seed: int = 0) -> Dict:
    """Sustained throughput and p99 latency of the socket front door.

    Two phases over the terminating WTC slice, under concurrent client
    connections:

    * **cold** — every request carries a distinct cache key (the same
      programs under distinct ``oracle_seed`` configs), so each one pays
      a full analysis in the worker pool;
    * **warm** — the identical requests again, so every one is a cache
      hit re-validated by the independent checker before serving.

    The committed claim is ``warm_p99_seconds < cold_p99_seconds`` with
    ``revalidation_failures == 0``: residency pays, and no cached
    certificate is ever served unchecked.
    """
    from repro.api.config import AnalysisConfig
    from repro.api.request import AnalysisRequest
    from repro.benchsuite import get_suite
    from repro.service import run_server_in_thread

    programs = [
        p for p in get_suite("wtc") if p.terminating and p.source is not None
    ]
    programs = programs[:2] if quick else programs[:4]
    variants = 2 if quick else 4
    clients = 2 if quick else 4
    warm_rounds = 2 if quick else 4

    def _lines(requests: List[AnalysisRequest]) -> List[bytes]:
        return [
            json.dumps(
                {
                    "jsonrpc": "2.0",
                    "id": index,
                    "method": "analyze",
                    "params": request.to_dict(),
                },
                sort_keys=True,
            ).encode("utf-8")
            + b"\n"
            for index, request in enumerate(requests)
        ]

    requests = [
        AnalysisRequest(
            program=program.source,
            config=AnalysisConfig(oracle_seed=seed + variant),
            name="%s@%d" % (program.name, variant),
        )
        for program in programs
        for variant in range(variants)
    ]

    server = run_server_in_thread(port=0, jobs=clients)
    try:
        # Cold: distinct keys round-robined over concurrent clients.
        cold_batches: List[List[bytes]] = [[] for _ in range(clients)]
        for index, line in enumerate(_lines(requests)):
            cold_batches[index % clients].append(line)
        started = time.perf_counter()
        cold_latencies = _drive_service_clients(
            server.host, server.port, cold_batches
        )
        cold_wall = time.perf_counter() - started

        # Warm: every client replays the whole request list — all hits.
        warm_batches = [
            [line for _ in range(warm_rounds) for line in _lines(requests)]
            for _ in range(clients)
        ]
        started = time.perf_counter()
        warm_latencies = _drive_service_clients(
            server.host, server.port, warm_batches
        )
        warm_wall = time.perf_counter() - started

        stats = server.cache_stats()["stats"]
    finally:
        server.stop()

    return {
        "suite": "service",
        "wall_seconds": round(cold_wall + warm_wall, 4),
        "programs": len(programs),
        "clients": clients,
        "cold_requests": len(cold_latencies),
        "cold_wall_seconds": round(cold_wall, 4),
        "cold_programs_per_second": round(len(cold_latencies) / cold_wall, 2)
        if cold_wall
        else None,
        "cold_p99_seconds": round(_percentile(cold_latencies, 0.99), 4),
        "warm_requests": len(warm_latencies),
        "warm_wall_seconds": round(warm_wall, 4),
        "warm_programs_per_second": round(len(warm_latencies) / warm_wall, 2)
        if warm_wall
        else None,
        "warm_p99_seconds": round(_percentile(warm_latencies, 0.99), 4),
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "revalidations": stats["revalidations"],
        "revalidation_failures": stats["revalidation_failures"],
    }


def bench_nonterm(quick: bool = False, seed: int = 0) -> Dict:
    """Recurrence-set synthesis over the nonterminating corpus slice.

    Runs the nontermination engine (``nonterm="only"``) over the seeded
    generator's nonterminating-by-construction gadgets plus the
    possibly-nonterminating WTC suite programs, and reports verdict
    counts, CEGIS refinement iterations, and how many of the claimed
    lasso witnesses the independent recurrence checker re-validated
    (every NONTERMINATING verdict must carry one).
    """
    from repro.api import AnalysisConfig, analyze
    from repro.benchsuite import get_suite
    from repro.checking.generator import NONTERMINATING, ProgramGenerator

    budget = 60 if quick else 200
    generator = ProgramGenerator(seed)
    gadgets = [
        program
        for program in generator.programs(budget)
        if program.expected == NONTERMINATING
    ]
    gadgets = gadgets[:4] if quick else gadgets[:16]
    wtc = [p for p in get_suite("wtc") if not p.terminating]
    wtc = wtc[:2] if quick else wtc[:6]

    config = AnalysisConfig(nonterm="only")
    nonterminating = unknown = errors = 0
    iterations = lassos_checked = lassos_valid = 0
    started = time.perf_counter()
    for kind, name, program in (
        [("gadget", g.name, g.source) for g in gadgets]
        + [("wtc", p.name, p.build()) for p in wtc]
    ):
        result = analyze(program, tool="termite", config=config, name=name)
        iterations += result.iterations
        if result.disproved:
            nonterminating += 1
            if result.lasso is not None:
                lassos_checked += 1
                lassos_valid += int(result.certificate_checked)
        elif result.status.value == "unknown":
            unknown += 1
        else:
            errors += 1
    wall = time.perf_counter() - started

    return {
        "suite": "nonterm",
        "wall_seconds": round(wall, 4),
        "programs": len(gadgets) + len(wtc),
        "gadgets": len(gadgets),
        "wtc_programs": len(wtc),
        "nonterminating": nonterminating,
        "unknown": unknown,
        "errors": errors,
        "iterations": iterations,
        "lassos_checked": lassos_checked,
        "lassos_valid": lassos_valid,
    }


def bench_service_chaos(quick: bool = False, seed: int = 0) -> Dict:
    """The service's robustness claims, exercised under injected faults.

    Three phases against real socket servers:

    * **chaos** — concurrent retrying clients
      (:func:`repro.service.client.call_with_retry`) drive the
      terminating WTC slice through a server running a seeded
      :class:`~repro.service.faults.FaultPlan` (workers killed
      mid-request, workers delayed, disk-cache files corrupted and
      truncated, responses cut off mid-line).  The committed claims:
      **every request is eventually answered** and **zero unsound
      verdicts** are ever served (every program in the slice terminates;
      any ``nonterminating`` answer would be unsound).
    * **restart** — the server is stopped and a fresh one is pointed at
      the same ``--cache-dir``; surviving disk entries must serve as
      revalidated hits (``disk_hits >= 1``) and every corrupted one must
      be dropped, never served (``revalidation_failures == 0``).
    * **overload** — twice the admission capacity in concurrent clients
      against a one-worker server; the gate must shed
      (``OVERLOADED``/-32005 with a ``retry_after_seconds`` hint) while
      the p99 of *accepted* requests stays bounded by the queue depth
      instead of growing with offered load.
    """
    import shutil
    import tempfile

    from repro.api.config import AnalysisConfig
    from repro.api.request import AnalysisRequest
    from repro.benchsuite import get_suite
    from repro.service import run_server_in_thread
    from repro.service.client import (
        ServiceClient,
        ServiceError,
        call_with_retry,
    )

    programs = [
        p for p in get_suite("wtc") if p.terminating and p.source is not None
    ]
    programs = programs[:2] if quick else programs[:3]
    variants = 2 if quick else 3
    clients = 2 if quick else 4
    plan = (
        "seed%d:kill=0.15,delay=0.1,corrupt=0.25,truncate=0.15,drop=0.15,"
        "delay_seconds=0.5" % seed
    )

    requests = [
        AnalysisRequest(
            program=program.source,
            config=AnalysisConfig(oracle_seed=seed + variant),
            name="%s@%d" % (program.name, variant),
        )
        for program in programs
        for variant in range(variants)
    ]

    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    started = time.perf_counter()
    lock = threading.Lock()
    answered = 0
    unsound = 0
    retries = 0
    failures: List[BaseException] = []

    def _chaos_client(index: int, host: str, port: int) -> None:
        nonlocal answered, unsound, retries
        rng = random.Random(seed * 1000 + index)

        def _count_retry(attempt, wait, error):
            nonlocal retries
            with lock:
                retries += 1

        client = ServiceClient(host, port, read_timeout=120.0)
        try:
            for request in requests:
                params = request.to_dict()
                try:
                    result = call_with_retry(
                        lambda: client.analyze(params),
                        max_attempts=10,
                        base_delay=0.05,
                        rng=rng,
                        on_retry=_count_retry,
                    )
                except BaseException as error:
                    with lock:
                        failures.append(error)
                    return
                with lock:
                    answered += 1
                    # Every program in the slice terminates; a served
                    # "nonterminating" would be an unsound verdict.
                    if result["status"] == "nonterminating":
                        unsound += 1
        finally:
            client.close()

    try:
        server = run_server_in_thread(
            port=0,
            jobs=2,
            timeout=30.0,
            cache_dir=cache_dir,
            cache_disk_bytes=4 * 1024 * 1024,
            fault_plan=plan,
            max_queue=64,  # the chaos phase measures faults, not shedding
        )
        try:
            threads = [
                threading.Thread(
                    target=_chaos_client, args=(i, server.host, server.port)
                )
                for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            chaos_stats = server.cache_stats()
        finally:
            server.stop()
        if failures:
            raise RuntimeError(
                "chaos client gave up: %s" % failures[0]
            ) from failures[0]

        # -- restart: the disk tier must survive (and stay sound) ------------
        server = run_server_in_thread(
            port=0, jobs=2, cache_dir=cache_dir,
            cache_disk_bytes=4 * 1024 * 1024,
        )
        try:
            client = ServiceClient(server.host, server.port)
            warm_latencies: List[float] = []
            restart_hits = 0
            try:
                for request in requests:
                    call_started = time.perf_counter()
                    result = call_with_retry(
                        lambda: client.analyze(request.to_dict()),
                        max_attempts=4,
                    )
                    warm_latencies.append(time.perf_counter() - call_started)
                    if result["provenance"]["cache"] == "hit":
                        restart_hits += 1
            finally:
                client.close()
            restart_stats = server.cache_stats()["stats"]
        finally:
            server.stop()

        # -- overload: shed fast, keep accepted latency bounded --------------
        overload_clients = 4  # 2x the (max_inflight=1) + (max_queue=1) line
        accepted: List[float] = []
        shed = 0
        hinted = 0
        server = run_server_in_thread(
            port=0, jobs=1, cache=False, max_inflight=1, max_queue=1,
            timeout=60.0,
        )
        try:
            def _overload_client(index: int) -> None:
                nonlocal shed, hinted
                client = ServiceClient(
                    server.host, server.port, read_timeout=120.0
                )
                try:
                    for request in requests[: 3 if quick else 4]:
                        call_started = time.perf_counter()
                        try:
                            client.analyze(request.to_dict())
                        except ServiceError as error:
                            if error.code != -32005:
                                raise
                            with lock:
                                shed += 1
                                if error.retry_after_seconds is not None:
                                    hinted += 1
                            continue
                        with lock:
                            accepted.append(
                                time.perf_counter() - call_started
                            )
                finally:
                    client.close()

            threads = [
                threading.Thread(target=_overload_client, args=(i,))
                for i in range(overload_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.stop()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    wall = time.perf_counter() - started

    return {
        "suite": "service_chaos",
        "wall_seconds": round(wall, 4),
        "fault_plan": plan,
        "clients": clients,
        "requests_total": clients * len(requests),
        "answered": answered,
        "retries": retries,
        "unsound_results": unsound,
        "faults_injected": chaos_stats.get("faults", {}),
        "disk_drops": chaos_stats["stats"]["disk_drops"]
        + restart_stats["disk_drops"],
        "revalidation_failures": chaos_stats["stats"]["revalidation_failures"]
        + restart_stats["revalidation_failures"],
        "pool": chaos_stats.get("pool", {}),
        "restart_requests": len(requests),
        "restart_cache_hits": restart_hits,
        "restart_disk_hits": restart_stats["disk_hits"],
        "warm_p99_seconds": round(_percentile(warm_latencies, 0.99), 4),
        "overload_clients": overload_clients,
        "overload_accepted": len(accepted),
        "overload_shed": shed,
        "overload_retry_after_hinted": hinted,
        "overload_accepted_p99_seconds": round(
            _percentile(accepted, 0.99), 4
        ),
    }


#: Suite name → runner, in the canonical (cheapest-first) order.  The
#: ``service``, ``nonterm`` and ``service_chaos`` suites are opt-in
#: (``repro bench service nonterm service_chaos``): the first forks a
#: worker pool, the second proves the nonterminating corpus slice end to
#: end, and the third injects faults into live servers, so the default
#: ``repro bench`` run keeps the historical five-suite document.
SUITE_RUNNERS = {
    "kernel_rows": bench_kernel_rows,
    "simplex": bench_simplex,
    "projection": bench_projection,
    "table1_wtc": lambda quick, seed: bench_table1_slice(quick=quick),
    "cegis_ablation": bench_cegis_ablation,
    "kernel_packed": bench_kernel_packed,
    "kernel_crossover": bench_kernel_crossover,
    "cex_batch_ablation": bench_cex_batch_ablation,
    "service": bench_service,
    "nonterm": bench_nonterm,
    "service_chaos": bench_service_chaos,
}

#: The suites ``repro bench`` runs when none are named.
DEFAULT_SUITES = (
    "kernel_rows",
    "simplex",
    "projection",
    "table1_wtc",
    "cegis_ablation",
    "kernel_packed",
    "kernel_crossover",
    "cex_batch_ablation",
)


def run_suite(quick: bool = False, seed: int = 0, suites=None) -> Dict:
    """Run the named *suites* (default: the five-kernel set) into the
    JSON document."""
    names = list(suites) if suites else list(DEFAULT_SUITES)
    unknown = [name for name in names if name not in SUITE_RUNNERS]
    if unknown:
        raise ValueError(
            "unknown suite(s) %s; have: %s"
            % (", ".join(unknown), ", ".join(SUITE_RUNNERS))
        )
    documents = [
        SUITE_RUNNERS[name](quick=quick, seed=seed) for name in names
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "seed": seed,
        "total_wall_seconds": round(
            sum(suite["wall_seconds"] for suite in documents), 4
        ),
        "suites": documents,
    }


def merge_bench_documents(previous: Dict, current: Dict) -> Dict:
    """Fold a partial run into an existing report document.

    Suites re-measured by *current* replace their same-named entries in
    *previous* (in place); new suites append.  Every other key of
    *previous* — notably ``baseline`` — is preserved, while
    ``quick``/``seed`` reflect the current run and
    ``total_wall_seconds`` is re-summed over the merged suites.
    """
    merged = dict(previous)
    suites = [dict(suite) for suite in previous.get("suites", [])]
    positions = {suite["suite"]: index for index, suite in enumerate(suites)}
    for suite in current.get("suites", []):
        index = positions.get(suite["suite"])
        if index is None:
            positions[suite["suite"]] = len(suites)
            suites.append(suite)
        else:
            suites[index] = suite
    merged["schema_version"] = current.get(
        "schema_version", previous.get("schema_version", SCHEMA_VERSION)
    )
    merged["quick"] = current.get("quick", False)
    merged["seed"] = current.get("seed", 0)
    merged["suites"] = suites
    merged["total_wall_seconds"] = round(
        sum(suite["wall_seconds"] for suite in suites), 4
    )
    return merged


