"""The measured-performance micro-suite behind ``repro bench``.

Five suites, cheapest first, each returning a plain dict that serialises
into ``BENCH_kernel.json``.  The goal is a *committed* performance
trajectory: every claim about the sparse scaled-integer kernel — and
about the CEGIS oracle/strategy ablation — is a number in the
repository, not an assertion in a docstring.

* ``kernel_rows`` — the raw row kernel: fused axpy/eliminate/dot on
  :class:`~repro.linalg.sparse.SparseRow` versus the same operations
  entry-by-entry on dense ``Fraction`` lists (the seed representation).
* ``simplex`` — a seeded batch of one-shot LPs plus one incrementally
  grown :class:`~repro.lp.simplex.SimplexState`, with pivot counts.
* ``projection`` — Fourier–Motzkin projections over seeded systems;
  reports the rows eliminated by the syntactic/Kohler layers and the LP
  calls they saved.
* ``table1_wtc`` — the end-to-end slice: the terminating WTC programs
  proved by the paper's lazy prover (the same slice
  ``bench_lp_size_rank_vs_termite.py`` measures), with total pivots.
* ``cegis_ablation`` — the same WTC slice once per counterexample
  oracle × strategy variant (extremal / arbitrary / random; SMT, DD
  enumeration, sampling), reporting iterations, LP rows and wall time —
  the paper's §4.2 ablation as one committed number series.

Reachable as ``repro bench``, ``python -m repro bench`` and
``python benchmarks/perf_kernel.py``.

JSON schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "quick": false,
      "suites": [
        {"suite": "...", "wall_seconds": ..., ...per-suite counters...},
        ...
      ]
    }
"""

from __future__ import annotations

import random
import time
from fractions import Fraction
from typing import Dict, List

SCHEMA_VERSION = 1


def _random_fraction(rng: random.Random) -> Fraction:
    if rng.random() < 0.4:
        return Fraction(0)
    return Fraction(rng.randint(-9, 9), rng.randint(1, 7))


def bench_kernel_rows(quick: bool = False, seed: int = 0) -> Dict:
    """Fused sparse row operations vs dense ``Fraction`` loops."""
    from repro.linalg.sparse import SparseRow

    rng = random.Random(seed)
    width = 24 if quick else 48
    pairs = 60 if quick else 300
    rounds = 3 if quick else 10

    dense_rows: List[List[Fraction]] = [
        [_random_fraction(rng) for _ in range(width)] for _ in range(pairs)
    ]
    factors = [
        Fraction(rng.randint(-5, 5), rng.randint(1, 4)) for _ in range(pairs)
    ]
    sparse_rows = [SparseRow.from_dense(row) for row in dense_rows]

    started = time.perf_counter()
    operations = 0
    for _ in range(rounds):
        for position in range(0, pairs - 1, 2):
            a = sparse_rows[position]
            b = sparse_rows[position + 1]
            a.combine(1, b, factors[position])
            a.dot(b)
            operations += 2
    sparse_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        for position in range(0, pairs - 1, 2):
            a = dense_rows[position]
            b = dense_rows[position + 1]
            factor = factors[position]
            [x + factor * y for x, y in zip(a, b)]
            sum((x * y for x, y in zip(a, b)), Fraction(0))
    dense_seconds = time.perf_counter() - started

    return {
        "suite": "kernel_rows",
        "wall_seconds": round(sparse_seconds, 4),
        "dense_wall_seconds": round(dense_seconds, 4),
        "speedup_vs_dense": round(dense_seconds / sparse_seconds, 2)
        if sparse_seconds
        else None,
        "operations": operations,
    }


def bench_simplex(quick: bool = False, seed: int = 0) -> Dict:
    """A seeded batch of exact LPs: one-shot solves plus one warm-started
    incrementally grown instance."""
    from repro.linexpr.expr import LinExpr, var
    from repro.lp.problem import Sense
    from repro.lp.simplex import SimplexState, solve_lp

    rng = random.Random(seed)
    instances = 8 if quick else 30
    size = 5 if quick else 8

    pivots = 0
    solved = 0
    started = time.perf_counter()
    for _ in range(instances):
        names = ["x%d" % i for i in range(size)]
        constraints = []
        for i in range(size):
            constraints.append(var(names[i]) >= -rng.randint(0, 5))
            constraints.append(var(names[i]) <= rng.randint(1, 9))
        for _ in range(size):
            terms = {
                name: Fraction(rng.randint(-3, 3))
                for name in rng.sample(names, 3)
            }
            constraints.append(
                LinExpr(terms) <= rng.randint(0, 12)
            )
        objective = LinExpr(
            {name: Fraction(rng.randint(-4, 4)) for name in names}
        )
        outcome = solve_lp(objective, constraints, Sense.MAXIMIZE)
        pivots += outcome.pivots
        solved += 1

    # Warm-started growth: one persistent LP, one row at a time — the
    # counterexample-loop access pattern of the paper's Algorithm 1.
    state = SimplexState(Sense.MAXIMIZE)
    growth = 10 if quick else 40
    objective = LinExpr()
    for j in range(growth):
        delta = "d%d" % j
        state.declare(delta, nonnegative=True)
        state.add_constraint(var(delta) <= 1)
        if j:
            state.add_constraint(
                var(delta) + var("d%d" % (j - 1)) * rng.randint(-2, 2)
                <= rng.randint(1, 4)
            )
        objective = objective + var(delta)
        state.set_objective(objective)
        state.solve()
        solved += 1
    pivots += state.total_pivots
    wall = time.perf_counter() - started

    return {
        "suite": "simplex",
        "wall_seconds": round(wall, 4),
        "lps_solved": solved,
        "pivots": pivots,
        "warm_solves": state.warm_solves,
    }


def bench_projection(quick: bool = False, seed: int = 0) -> Dict:
    """Seeded Fourier–Motzkin projections, counting pruned rows."""
    from repro.linexpr.constraint import Constraint, Relation
    from repro.linexpr.expr import LinExpr
    from repro.polyhedra import projection

    rng = random.Random(seed)
    systems = 10 if quick else 40
    names = ["a", "b", "c", "d", "e"]

    snapshot = projection.statistics.snapshot()
    started = time.perf_counter()
    for _ in range(systems):
        constraints = []
        for _ in range(rng.randint(4, 8)):
            terms = {
                name: Fraction(rng.randint(-3, 3))
                for name in rng.sample(names, rng.randint(1, 3))
            }
            constraints.append(
                Constraint(
                    LinExpr(terms, Fraction(rng.randint(-5, 5))), Relation.LE
                )
            )
        drop = rng.sample(names, rng.randint(1, 3))
        projection.fourier_motzkin(constraints, drop)
    wall = time.perf_counter() - started
    after = projection.statistics

    return {
        "suite": "projection",
        "wall_seconds": round(wall, 4),
        "systems": systems,
        "variables_eliminated": after.variables_eliminated - snapshot[0],
        "combinations": after.combinations - snapshot[1],
        "lp_calls": after.lp_calls - snapshot[2],
        "lp_calls_saved": after.lp_calls_saved - snapshot[3],
        "rows_eliminated": (
            after.rows_pruned_syntactic
            + after.rows_pruned_kohler
            - snapshot[4]
            - snapshot[5]
        ),
    }


def bench_table1_slice(quick: bool = False) -> Dict:
    """End-to-end: the terminating WTC slice through the lazy prover."""
    from repro.benchsuite import get_suite
    from repro.core.termination import TerminationProver

    programs = [p for p in get_suite("wtc") if p.terminating]
    programs = programs[:2] if quick else programs[:4]

    pivots = warm = cold = proved = 0
    rows = cols = instances = 0
    started = time.perf_counter()
    for program in programs:
        result = TerminationProver(
            program.build(), check_certificates=False
        ).prove()
        proved += int(result.proved)
        statistics = result.lp_statistics
        pivots += statistics.pivots
        warm += statistics.warm_solves
        cold += statistics.cold_solves
        rows += statistics.total_rows
        cols += statistics.total_cols
        instances += statistics.instances
    wall = time.perf_counter() - started

    return {
        "suite": "table1_wtc",
        "wall_seconds": round(wall, 4),
        "programs": len(programs),
        "proved": proved,
        "pivots": pivots,
        "warm_solves": warm,
        "cold_solves": cold,
        "average_lp_rows": round(rows / instances, 2) if instances else 0.0,
        "average_lp_cols": round(cols / instances, 2) if instances else 0.0,
    }


#: The oracle × strategy points of the ``cegis_ablation`` suite: the
#: paper's default, the two §4.2 counterexample-selection ablations, and
#: the two alternative oracles.
CEGIS_ABLATION_VARIANTS = (
    ("smt", "extremal"),
    ("smt", "arbitrary"),
    ("smt", "random"),
    ("dd", "extremal"),
    ("sampling", "random"),
)


def bench_cegis_ablation(quick: bool = False, seed: int = 0) -> Dict:
    """Extremal vs. arbitrary vs. random counterexamples, end to end.

    Runs the WTC Table-1 slice (the same terminating programs as
    ``table1_wtc``) through the lazy prover once per oracle × strategy
    variant and reports the quantities the paper's ablation compares:
    refinement iterations, LP rows (one per counterexample), and wall
    time.  Every variant must prove the same programs — the strategies
    change the *cost*, never the verdict.
    """
    from repro.api import AnalysisConfig, analyze
    from repro.benchsuite import get_suite

    programs = [p for p in get_suite("wtc") if p.terminating]
    programs = programs[:2] if quick else programs[:4]

    variants: List[Dict] = []
    total = 0.0
    for oracle, strategy in CEGIS_ABLATION_VARIANTS:
        config = AnalysisConfig(
            check_certificates=False,
            cex_oracle=oracle,
            cex_strategy=strategy,
            oracle_seed=seed,
        )
        proved = iterations = lp_rows = oracle_queries = 0
        started = time.perf_counter()
        for program in programs:
            result = analyze(
                program.build(), tool="termite", config=config,
                name=program.name,
            )
            proved += int(result.proved)
            iterations += result.iterations
            lp_rows += result.lp_statistics.cex_rows
            oracle_queries += result.lp_statistics.oracle_queries
        wall = time.perf_counter() - started
        total += wall
        variants.append(
            {
                "oracle": oracle,
                "strategy": strategy,
                "programs": len(programs),
                "proved": proved,
                "iterations": iterations,
                "lp_rows": lp_rows,
                "oracle_queries": oracle_queries,
                "wall_seconds": round(wall, 4),
            }
        )

    return {
        "suite": "cegis_ablation",
        "wall_seconds": round(total, 4),
        "programs": len(programs),
        "variants": variants,
    }


def run_suite(quick: bool = False, seed: int = 0) -> Dict:
    """Run every suite and assemble the JSON document."""
    suites = [
        bench_kernel_rows(quick=quick, seed=seed),
        bench_simplex(quick=quick, seed=seed),
        bench_projection(quick=quick, seed=seed),
        bench_table1_slice(quick=quick),
        bench_cegis_ablation(quick=quick, seed=seed),
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "seed": seed,
        "total_wall_seconds": round(
            sum(suite["wall_seconds"] for suite in suites), 4
        ),
        "suites": suites,
    }


