"""Plain-text table rendering (the shape of the paper's Table 1)."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.reporting.runner import SuiteReport


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned ASCII table."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [render(list(headers)), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in materialised)
    return "\n".join(lines)


def format_table1_row(report: SuiteReport) -> List[object]:
    """One row in the shape of the paper's Table 1.

    The pivot column shows total simplex pivots plus the warm/cold solve
    split — the quantity the incremental LP of the counterexample loop
    drives down; ``#failed`` counts crashes and timeouts (a failed program
    is recorded, never aborts the table).
    """
    failed = report.failures
    return [
        report.suite,
        report.tool,
        report.total,
        report.successes,
        failed if failed else "-",
        "%.0f" % report.average_time_ms,
        "(%.1f, %.1f)" % (report.average_lp_rows, report.average_lp_cols),
        "%d (%d/%d)"
        % (report.total_pivots, report.warm_solves, report.cold_solves),
        "; ".join(report.unsound) if report.unsound else "-",
    ]


TABLE1_HEADERS = [
    "suite",
    "tool",
    "#benchmarks",
    "#success",
    "#failed",
    "avg time (ms)",
    "avg LP (rows, cols)",
    "pivots (warm/cold)",
    "soundness violations",
]
