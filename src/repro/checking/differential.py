"""Cross-prover differential testing with independent certificate audit.

The harness runs every requested prover from the :mod:`repro.api`
registry on each program (building the termination problem once and
sharing it, exactly like the batch runner), then audits the results:

* a claimed ``TERMINATING`` verdict whose ranking function the
  independent checker *rejects* is a soundness violation
  (``certificate_rejected``) — the checker's witness state is attached;
* any ``TERMINATING`` verdict on a program that is nonterminating by
  construction is a soundness violation (``proved_nonterminating``);
* a certificate-capable prover claiming ``TERMINATING`` on a cyclic
  program *without* producing a ranking is flagged
  (``missing_certificate``);
* the ground truth is **two-sided**: any ``NONTERMINATING`` verdict on a
  program that is terminating by construction is a soundness violation
  (``nonterm_on_terminating``), and a ``NONTERMINATING`` claim whose
  lasso witness is missing or refuted by the independent recurrence
  checker is one too (``lasso_rejected``).

Prover *disagreements* (one tool proves, another returns UNKNOWN) are
expected — the baselines are incomplete in different ways — and are
tallied, not flagged.  :func:`fuzz` drives the harness over the seeded
generator and greedily shrinks every ``certificate_rejected`` reproducer
(the other kinds are not shrunk: shrinking could silently change the
ground truth the violation is judged against).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import AnalysisConfig, Analysis, available_provers, canonical_name
from repro.api.result import AnalysisResult
from repro.checking.checker import (
    CertificateVerdict,
    check_ranking,
)
from repro.checking.recurrence import check_recurrence
from repro.checking.generator import (
    GeneratedProgram,
    NONTERMINATING,
    ProgramGenerator,
    TERMINATING,
    shrink_program,
)
from repro.frontend.errors import FrontendError

#: Report schema version (bump on incompatible changes).
SCHEMA_VERSION = 1


def default_fuzz_config() -> AnalysisConfig:
    """The fuzz campaign's analysis configuration.

    Provers' own certificate re-checks are switched off (the harness runs
    the *independent* checker instead) and the synthesis budgets are kept
    modest: a hard generated program coming back UNKNOWN is fine — the
    campaign optimises for many diverse programs per second.
    """
    return AnalysisConfig(
        check_certificates=False,
        max_iterations=60,
        max_dimension=4,
        nonterm="auto",
    )


@dataclass
class SoundnessViolation:
    """One observed soundness violation, with a reproducer."""

    kind: str  # "certificate_rejected" | "proved_nonterminating"
    # | "missing_certificate" | "nonterm_on_terminating" | "lasso_rejected"
    program: str
    tool: str
    detail: str
    source: str
    seed: Optional[int] = None
    index: Optional[int] = None
    shape: str = ""
    original_source: str = ""
    failures: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "program": self.program,
            "tool": self.tool,
            "detail": self.detail,
            "source": self.source,
            "seed": self.seed,
            "index": self.index,
            "shape": self.shape,
            "original_source": self.original_source,
            "failures": list(self.failures),
        }

    def __repr__(self) -> str:
        return "SoundnessViolation(%s, %s on %s)" % (self.kind, self.tool, self.program)


@dataclass
class ProgramAudit:
    """Everything the harness learned about one program."""

    name: str
    results: List[AnalysisResult] = field(default_factory=list)
    verdicts: Dict[str, CertificateVerdict] = field(default_factory=dict)
    lasso_verdicts: Dict[str, CertificateVerdict] = field(default_factory=dict)
    violations: List[SoundnessViolation] = field(default_factory=list)
    build_error: Optional[str] = None


@dataclass
class FuzzReport:
    """Aggregate outcome of a differential run."""

    seed: Optional[int]
    count: int
    tools: List[str]
    programs: int = 0
    outcomes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    certificates_checked: int = 0
    certificates_valid: int = 0
    certificates_inconclusive: int = 0
    lassos_checked: int = 0
    lassos_valid: int = 0
    lassos_inconclusive: int = 0
    disagreements: int = 0
    violations: List[SoundnessViolation] = field(default_factory=list)
    build_errors: List[str] = field(default_factory=list)
    timeouts: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.build_errors

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "seed": self.seed,
            "count": self.count,
            "tools": list(self.tools),
            "programs": self.programs,
            "outcomes": {tool: dict(tally) for tool, tally in self.outcomes.items()},
            "certificates_checked": self.certificates_checked,
            "certificates_valid": self.certificates_valid,
            "certificates_inconclusive": self.certificates_inconclusive,
            "lassos_checked": self.lassos_checked,
            "lassos_valid": self.lassos_valid,
            "lassos_inconclusive": self.lassos_inconclusive,
            "disagreements": self.disagreements,
            "violations": [violation.to_dict() for violation in self.violations],
            "build_errors": list(self.build_errors),
            "timeouts": list(self.timeouts),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "ok": self.ok,
        }

    def summary(self) -> str:
        lines = [
            "%d programs x %d tools | %d certificates audited "
            "(%d valid, %d inconclusive) | %d lassos audited "
            "(%d valid, %d inconclusive) | %d prover disagreements"
            % (
                self.programs,
                len(self.tools),
                self.certificates_checked,
                self.certificates_valid,
                self.certificates_inconclusive,
                self.lassos_checked,
                self.lassos_valid,
                self.lassos_inconclusive,
                self.disagreements,
            )
        ]
        for tool in self.tools:
            tally = self.outcomes.get(tool, {})
            lines.append(
                "  %-22s proved %-4d nonterm %-4d unknown %-4d error %d"
                % (
                    tool,
                    tally.get("terminating", 0),
                    tally.get("nonterminating", 0),
                    tally.get("unknown", 0),
                    tally.get("error", 0) + tally.get("timeout", 0),
                )
            )
        if self.build_errors:
            lines.append("  generator/build errors: %d" % len(self.build_errors))
        if self.timeouts:
            lines.append("  per-program timeouts: %d" % len(self.timeouts))
        lines.append(
            "soundness violations: %d%s"
            % (
                len(self.violations),
                "" if not self.violations else " <-- FAILURE",
            )
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# auditing one program
# ---------------------------------------------------------------------------


def _resolve_tools(tools: Optional[Sequence[str]]) -> List[str]:
    if tools is None:
        return available_provers()
    return [canonical_name(tool) for tool in tools]


def audit_source(
    source: str,
    tools: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    name: str = "program",
    expected: str = "unknown",
    disjunct_cap: Optional[int] = None,
) -> ProgramAudit:
    """Run *tools* on mini-language *source* and audit every claim."""
    tools = _resolve_tools(tools)
    config = config if config is not None else AnalysisConfig()
    audit = ProgramAudit(name=name)
    checker_kwargs = {} if disjunct_cap is None else {"disjunct_cap": disjunct_cap}

    analysis = Analysis(source, config=config, name=name)
    try:
        problem = analysis.problem()
    except FrontendError as error:
        audit.build_error = "%s: %s" % (type(error).__name__, error)
        return audit
    except Exception as error:  # lowering/invariant crash: also a finding
        audit.build_error = "%s: %s" % (type(error).__name__, error)
        return audit

    for tool in tools:
        try:
            result = analysis.run(tool)
        except Exception as error:
            result = AnalysisResult(
                tool=tool,
                program=name,
                status="error",
                error="%s: %s" % (type(error).__name__, error),
            )
        audit.results.append(result)
        if result.disproved:
            if expected == TERMINATING:
                audit.violations.append(
                    SoundnessViolation(
                        kind="nonterm_on_terminating",
                        program=name,
                        tool=tool,
                        detail="claimed NONTERMINATING on a program that "
                        "is terminating by construction",
                        source=source,
                    )
                )
            if result.lasso is None:
                audit.violations.append(
                    SoundnessViolation(
                        kind="lasso_rejected",
                        program=name,
                        tool=tool,
                        detail="claimed NONTERMINATING without a lasso "
                        "witness",
                        source=source,
                    )
                )
                continue
            lasso_verdict = check_recurrence(analysis.automaton(), result.lasso)
            audit.lasso_verdicts[tool] = lasso_verdict
            if lasso_verdict.status == CertificateVerdict.INVALID:
                audit.violations.append(
                    SoundnessViolation(
                        kind="lasso_rejected",
                        program=name,
                        tool=tool,
                        detail="; ".join(
                            "%s->%s: %s" % (f.source, f.target, f.case)
                            for f in lasso_verdict.failures[:3]
                        ),
                        source=source,
                        failures=[
                            f.to_dict() for f in lasso_verdict.failures
                        ],
                    )
                )
            continue
        if not result.proved:
            continue
        if expected == NONTERMINATING:
            audit.violations.append(
                SoundnessViolation(
                    kind="proved_nonterminating",
                    program=name,
                    tool=tool,
                    detail="claimed TERMINATING on a program that is "
                    "nonterminating by construction",
                    source=source,
                )
            )
        if not problem.blocks:
            continue  # trivially terminating; nothing to audit
        if result.ranking is None:
            audit.violations.append(
                SoundnessViolation(
                    kind="missing_certificate",
                    program=name,
                    tool=tool,
                    detail="claimed TERMINATING on a cyclic program "
                    "without a ranking function",
                    source=source,
                )
            )
            continue
        verdict = check_ranking(
            problem,
            result.ranking,
            integer_mode=config.integer_mode,
            **checker_kwargs,
        )
        audit.verdicts[tool] = verdict
        if verdict.status == CertificateVerdict.INVALID:
            audit.violations.append(
                SoundnessViolation(
                    kind="certificate_rejected",
                    program=name,
                    tool=tool,
                    detail="; ".join(
                        "%s->%s: %s" % (f.source, f.target, f.case)
                        for f in verdict.failures[:3]
                    ),
                    source=source,
                    failures=[f.to_dict() for f in verdict.failures],
                )
            )
    return audit


def audit_generated_program(
    program: GeneratedProgram,
    tools: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    disjunct_cap: Optional[int] = None,
) -> ProgramAudit:
    """:func:`audit_source` for a generator program (carries ground truth)."""
    audit = audit_source(
        program.source,
        tools=tools,
        config=config,
        name=program.name,
        expected=program.expected,
        disjunct_cap=disjunct_cap,
    )
    for violation in audit.violations:
        violation.seed = program.seed
        violation.index = program.index
        violation.shape = program.shape
    return audit


# ---------------------------------------------------------------------------
# the campaign driver
# ---------------------------------------------------------------------------


def _tally(report: FuzzReport, audit: ProgramAudit) -> None:
    decided, unproved = 0, 0
    for result in audit.results:
        tally = report.outcomes.setdefault(result.tool, {})
        key = result.status.value
        tally[key] = tally.get(key, 0) + 1
        if result.proved or result.disproved:
            decided += 1
        elif result.status.value == "unknown":
            unproved += 1
    if decided and unproved:
        report.disagreements += 1
    for verdict in audit.verdicts.values():
        report.certificates_checked += 1
        if verdict.status == CertificateVerdict.VALID:
            report.certificates_valid += 1
        elif verdict.status == CertificateVerdict.INCONCLUSIVE:
            report.certificates_inconclusive += 1
    for verdict in audit.lasso_verdicts.values():
        report.lassos_checked += 1
        if verdict.status == CertificateVerdict.VALID:
            report.lassos_valid += 1
        elif verdict.status == CertificateVerdict.INCONCLUSIVE:
            report.lassos_inconclusive += 1


def _shrink_violation(
    violation: SoundnessViolation,
    program: GeneratedProgram,
    config: AnalysisConfig,
    disjunct_cap: Optional[int],
    max_checks: int,
    timeout: Optional[float] = None,
) -> SoundnessViolation:
    """Shrink a ``certificate_rejected`` reproducer (other kinds pass through).

    When the campaign runs with a per-program *timeout*, every shrink
    probe is routed through the same crash-isolated worker engine — a
    shrink candidate that hangs a prover costs its budget and simply
    counts as "no longer failing", it cannot stall the campaign.
    """
    if violation.kind != "certificate_rejected":
        return violation

    def audit_candidate(candidate: GeneratedProgram):
        return audit_generated_program(
            candidate,
            tools=[violation.tool],
            config=config,
            disjunct_cap=disjunct_cap,
        )

    def still_failing(candidate: GeneratedProgram) -> bool:
        if timeout is not None:
            from repro.reporting.parallel import run_tasks

            task = run_tasks(
                [functools.partial(audit_candidate, candidate)],
                jobs=1,
                timeout=timeout,
            )[0]
            if not task.ok:
                return False
            audit = task.value
        else:
            audit = audit_candidate(candidate)
        return any(
            v.kind == "certificate_rejected" and v.tool == violation.tool
            for v in audit.violations
        )

    shrunk = shrink_program(program, still_failing, max_checks=max_checks)
    if shrunk is not program:
        violation.original_source = program.source
        violation.source = shrunk.source
    return violation


def run_differential(
    programs: Sequence[GeneratedProgram],
    tools: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    shrink: bool = True,
    disjunct_cap: Optional[int] = None,
    max_shrink_checks: int = 60,
    jobs: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[int, ProgramAudit], None]] = None,
) -> FuzzReport:
    """Audit a batch of generated programs and aggregate the findings.

    With ``jobs > 1`` or a per-program ``timeout``, programs are audited
    in the crash-isolated worker processes of
    :mod:`repro.reporting.parallel` (a hanging generated program then
    costs its budget, not the campaign); results keep submission order
    either way.  Shrinking always happens in the parent process.
    """
    # Imported lazily: the reporting package sits above the api layering.
    from repro.reporting.parallel import run_tasks

    tools = _resolve_tools(tools)
    config = config if config is not None else default_fuzz_config()
    programs = list(programs)
    report = FuzzReport(
        seed=programs[0].seed if programs else None,
        count=len(programs),
        tools=tools,
    )
    started = time.perf_counter()
    thunks = [
        functools.partial(
            audit_generated_program,
            program,
            tools=tools,
            config=config,
            disjunct_cap=disjunct_cap,
        )
        for program in programs
    ]
    tasks = run_tasks(thunks, jobs=jobs, timeout=timeout)
    for position, (program, task) in enumerate(zip(programs, tasks)):
        report.programs += 1
        if task.kind == "timeout":
            report.timeouts.append(
                "%s: timed out after %.1fs" % (program.name, task.elapsed)
            )
            continue
        if not task.ok:
            report.build_errors.append(
                "%s: %s" % (program.name, task.message or task.kind)
            )
            continue
        audit = task.value
        if audit.build_error is not None:
            report.build_errors.append(
                "%s: %s" % (program.name, audit.build_error)
            )
        _tally(report, audit)
        for violation in audit.violations:
            if shrink:
                violation = _shrink_violation(
                    violation,
                    program,
                    config,
                    disjunct_cap,
                    max_shrink_checks,
                    timeout=timeout,
                )
            report.violations.append(violation)
        if progress is not None:
            progress(position, audit)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def fuzz(
    seed: int = 0,
    count: int = 100,
    tools: Optional[Sequence[str]] = None,
    config: Optional[AnalysisConfig] = None,
    shrink: bool = True,
    disjunct_cap: Optional[int] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[int, ProgramAudit], None]] = None,
) -> FuzzReport:
    """Generate *count* programs from *seed* and run the differential audit.

    Reproduce any reported violation with its printed ``(seed, index)``::

        ProgramGenerator(seed).generate(index).source
    """
    generator = ProgramGenerator(seed)
    report = run_differential(
        list(generator.programs(count)),
        tools=tools,
        config=config,
        shrink=shrink,
        disjunct_cap=disjunct_cap,
        jobs=jobs,
        timeout=timeout,
        progress=progress,
    )
    report.seed = seed
    return report
