"""Independent re-verification of lexicographic ranking certificates.

Given a :class:`~repro.core.problem.TerminationProblem` and a synthesised
:class:`~repro.core.ranking.LexicographicRankingFunction`, this module
re-checks the defining property of Definition 6 of the paper *without*
trusting — or sharing code with — the LP/SMT synthesis loop that produced
it: every proof obligation is discharged by the exact rational
Gauss/Fourier–Motzkin engine of :mod:`repro.checking.farkas`.

For every block transition ``k → k'`` the certificate must guarantee, on
every state pair admitted by ``I_k(x) ∧ φ(x, x')``, that the tuple
``⟨ρ_1, …, ρ_m⟩`` decreases lexicographically with the *active* component
nonnegative before the step: there is a position ``i`` with

    ρ_j(k, x) = ρ_j(k', x')  for all j < i,
    ρ_i(k', x') < ρ_i(k, x),   and   ρ_i(k, x) ≥ 0.

Scanning the first position where the tuple changes shows the negation is
exactly the union of ``2·m + 1`` conjunctive failure patterns — for each
``i``: "prefix equal and component *i* grew" and "prefix equal, component
*i* decreased while negative", plus "no component changed".  The block
formula is expanded into its path disjuncts and every (disjunct, pattern)
pair must be refuted.  A pattern that cannot be refuted comes back with a
concrete rational witness state, which is what makes "invalid" verdicts
actionable (and shrinkable) instead of a bare boolean.

Two deliberate properties of this check:

* it is *weaker* than what Termite's synthesis guarantees (globally
  nonnegative components), so it also validates certificates in the
  per-transition style emitted by the eager baselines;
* it is performed over ℚ.  For the all-integer programs of the
  benchmarks this is sound: ranking values of integer states lie in a
  lattice ``(1/D)·ℤ`` bounded below at the active position, so strict
  rational decrease cannot repeat forever.

The invariants ``I_k`` are taken as given — certificates are *relative*
to them (Definition 5); auditing the abstract interpreter is a separate
concern (see ``docs/TESTING.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.checking import farkas
from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import (
    And,
    Atom,
    Exists,
    FALSE,
    Formula,
    Not,
    Or,
    TRUE,
)
from repro.linexpr.transform import prime_suffix

#: Default cap on the number of path disjuncts expanded per block.
DEFAULT_DISJUNCT_CAP = 4096


class _DisjunctCapExceeded(Exception):
    pass


class _UnsupportedFormula(Exception):
    pass


# ---------------------------------------------------------------------------
# verdicts
# ---------------------------------------------------------------------------


@dataclass
class ObligationFailure:
    """One unrefuted proof obligation, with its witness state."""

    source: str
    target: str
    case: str
    witness: Dict[str, str] = field(default_factory=dict)
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "target": self.target,
            "case": self.case,
            "witness": dict(self.witness),
            "note": self.note,
        }

    def __repr__(self) -> str:
        return "ObligationFailure(%s->%s: %s)" % (self.source, self.target, self.case)


@dataclass
class CertificateVerdict:
    """Outcome of independently re-checking one certificate."""

    status: str  # "valid" | "invalid" | "inconclusive"
    dimension: int = 0
    blocks: int = 0
    disjuncts: int = 0
    obligations: int = 0
    refuted: int = 0
    failures: List[ObligationFailure] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    VALID = "valid"
    INVALID = "invalid"
    INCONCLUSIVE = "inconclusive"

    @property
    def accepted(self) -> bool:
        return self.status == self.VALID

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "dimension": self.dimension,
            "blocks": self.blocks,
            "disjuncts": self.disjuncts,
            "obligations": self.obligations,
            "refuted": self.refuted,
            "failures": [failure.to_dict() for failure in self.failures],
            "notes": list(self.notes),
        }

    def __repr__(self) -> str:
        return "CertificateVerdict(%s, %d/%d obligations refuted)" % (
            self.status,
            self.refuted,
            self.obligations,
        )


# ---------------------------------------------------------------------------
# formula expansion (self-contained, with an explicit cap)
# ---------------------------------------------------------------------------


def _negate_atom(constraint: Constraint) -> List[List[Constraint]]:
    """DNF of ``¬constraint``."""
    if constraint.is_equality():
        return [
            [Constraint(constraint.expr, Relation.LT)],
            [Constraint(-constraint.expr, Relation.LT)],
        ]
    return [[constraint.negate()]]


def _expand(formula: Formula, negated: bool, cap: int) -> List[List[Constraint]]:
    """DNF expansion of (possibly negated) *formula* as constraint lists."""
    if formula is TRUE:
        return [] if negated else [[]]
    if formula is FALSE:
        return [[]] if negated else []
    if isinstance(formula, Atom):
        if negated:
            return _negate_atom(formula.constraint)
        return [[formula.constraint]]
    if isinstance(formula, Not):
        return _expand(formula.operand, not negated, cap)
    if isinstance(formula, (And, Or)):
        is_product = isinstance(formula, And) != negated
        parts = [_expand(op, negated, cap) for op in formula.operands]
        if is_product:
            product: List[List[Constraint]] = [[]]
            for part in parts:
                product = [left + right for left in product for right in part]
                if len(product) > cap:
                    raise _DisjunctCapExceeded()
                if not product:
                    return []
            return product
        union: List[List[Constraint]] = []
        for part in parts:
            union.extend(part)
            if len(union) > cap:
                raise _DisjunctCapExceeded()
        return union
    if isinstance(formula, Exists):
        # Large-block formulas leave intermediate copies free rather than
        # quantified, so this does not occur in practice; refusing keeps
        # the checker honest instead of guessing capture semantics.
        raise _UnsupportedFormula("existential quantifier in block formula")
    raise _UnsupportedFormula("unknown formula node %r" % (formula,))


def _dedup(constraints: Sequence[Constraint]) -> List[Constraint]:
    seen = set()
    result: List[Constraint] = []
    for constraint in constraints:
        if constraint in seen:
            continue
        seen.add(constraint)
        result.append(constraint)
    return result


# ---------------------------------------------------------------------------
# the check itself
# ---------------------------------------------------------------------------


def _failure_cases(
    before: Sequence[LinExpr], after: Sequence[LinExpr]
) -> List[tuple]:
    """The ``2m + 1`` conjunctive ways Definition 6 can fail on one step."""
    cases: List[tuple] = []
    for position in range(len(before)):
        prefix = [
            Constraint(before[j] - after[j], Relation.EQ)
            for j in range(position)
        ]
        cases.append(
            (
                "component %d grew" % (position + 1),
                prefix + [Constraint(before[position] - after[position], Relation.LT)],
            )
        )
        cases.append(
            (
                "component %d decreased while negative" % (position + 1),
                prefix
                + [
                    Constraint(after[position] - before[position], Relation.LT),
                    Constraint(before[position], Relation.LT),
                ],
            )
        )
    cases.append(
        (
            "no component decreased",
            [
                Constraint(before[j] - after[j], Relation.EQ)
                for j in range(len(before))
            ],
        )
    )
    return cases


def _integer_predicate(problem: TerminationProblem):
    """Whether a (possibly primed/copied) variable name is integer-valued.

    The large-block encoding derives every auxiliary name from a program
    variable: primed names carry a ``'`` suffix, per-location copies an
    ``@location!batch`` suffix and freshened auxiliaries a ``!n`` suffix.
    """
    integers = set(problem.integer_variables)

    def is_integer(name: str) -> bool:
        base = name.rstrip("'").split("@")[0].split("!")[0]
        return base in integers

    return is_integer


def check_ranking(
    problem: TerminationProblem,
    ranking: LexicographicRankingFunction,
    integer_mode: bool = False,
    disjunct_cap: int = DEFAULT_DISJUNCT_CAP,
    row_budget: int = farkas.DEFAULT_ROW_BUDGET,
) -> CertificateVerdict:
    """Re-verify *ranking* against *problem*, obligation by obligation.

    With ``integer_mode`` the checker may additionally tighten strict
    atoms over integer-valued variables (matching the synthesiser's
    integer reasoning); an unrefuted obligation whose witness is
    non-integral is then reported as *inconclusive* rather than invalid,
    because the rational counterexample may be spurious for the integer
    program.
    """
    verdict = CertificateVerdict(
        status=CertificateVerdict.VALID,
        dimension=ranking.dimension,
        blocks=len(problem.blocks),
    )
    if not problem.blocks:
        verdict.notes.append("no block transitions: trivially terminating")
        return verdict
    if ranking.dimension == 0:
        verdict.status = CertificateVerdict.INVALID
        verdict.failures.append(
            ObligationFailure(
                source="*",
                target="*",
                case="empty certificate for a program with cycles",
            )
        )
        return verdict

    is_integer = _integer_predicate(problem)
    primed = {name: prime_suffix(name) for name in problem.variables}
    inconclusive = False

    for block in problem.blocks:
        try:
            before = [
                component.expression(block.source)
                for component in ranking.components
            ]
            after = [
                component.expression(block.target).rename(primed)
                for component in ranking.components
            ]
        except KeyError as error:
            # A malformed certificate (no coefficients for a cut point it
            # must cover) is invalid, not a checker crash.
            verdict.failures.append(
                ObligationFailure(
                    source=block.source,
                    target=block.target,
                    case="certificate undefined at cut point %s" % (error,),
                )
            )
            continue
        invariant = list(problem.invariant(block.source).constraints)
        try:
            disjuncts = _expand(block.formula, False, disjunct_cap)
        except _DisjunctCapExceeded:
            verdict.notes.append(
                "block %s->%s: more than %d path disjuncts, not expanded"
                % (block.source, block.target, disjunct_cap)
            )
            inconclusive = True
            continue
        except _UnsupportedFormula as error:
            verdict.notes.append(
                "block %s->%s: %s" % (block.source, block.target, error)
            )
            inconclusive = True
            continue
        verdict.disjuncts += len(disjuncts)
        cases = _failure_cases(before, after)
        if integer_mode:
            # Tightening is per-atom, so base and pattern can be
            # tightened separately — the patterns once per block, not
            # once per (disjunct, pattern) pair.
            cases = [
                (label, farkas.tighten_integer_strict(pattern, is_integer))
                for label, pattern in cases
            ]
        for disjunct in disjuncts:
            base = _dedup(invariant + disjunct)
            if integer_mode:
                base = farkas.tighten_integer_strict(base, is_integer)
            try:
                if isinstance(
                    farkas.decide_system(base, row_budget), farkas.Refutation
                ):
                    # Unreachable path: every failure pattern on it is
                    # vacuously refuted.
                    verdict.obligations += len(cases)
                    verdict.refuted += len(cases)
                    continue
                for label, pattern in cases:
                    verdict.obligations += 1
                    decision = farkas.decide_system(base + pattern, row_budget)
                    if isinstance(decision, farkas.Refutation):
                        verdict.refuted += 1
                        continue
                    witness = decision
                    if integer_mode and not witness.is_integral(
                        [
                            name
                            for name in witness.assignment
                            if is_integer(name)
                        ]
                    ):
                        inconclusive = True
                        verdict.notes.append(
                            "block %s->%s: %s admits only a non-integral "
                            "witness; spurious for the integer program?"
                            % (block.source, block.target, label)
                        )
                        continue
                    verdict.failures.append(
                        ObligationFailure(
                            source=block.source,
                            target=block.target,
                            case=label,
                            witness=witness.to_dict(),
                        )
                    )
            except farkas.FarkasBudgetExceeded as error:
                verdict.notes.append(
                    "block %s->%s: %s" % (block.source, block.target, error)
                )
                inconclusive = True

    if verdict.failures:
        verdict.status = CertificateVerdict.INVALID
    elif inconclusive:
        verdict.status = CertificateVerdict.INCONCLUSIVE
    return verdict


def check_result(
    problem: TerminationProblem,
    ranking: Optional[LexicographicRankingFunction],
    integer_mode: bool = False,
    **kwargs,
) -> Optional[CertificateVerdict]:
    """Check a prover result's ranking; ``None`` when there is none to check."""
    if ranking is None:
        if not problem.blocks:
            return CertificateVerdict(
                status=CertificateVerdict.VALID,
                notes=["no block transitions: trivially terminating"],
            )
        return None
    return check_ranking(problem, ranking, integer_mode=integer_mode, **kwargs)
