"""Exact rational (in)feasibility of linear constraint systems.

This is the trusted core of the certificate checker, so it is written to
be audited by eye and shares **no decision logic** with the LP solver or
the SMT stack it cross-examines (the only shared code is the dumb
scaled-integer row arithmetic of :mod:`repro.linalg.sparse`, which has
its own randomised differential tests against dense ``Fraction`` math).  A *system* is a list of
:class:`~repro.linexpr.constraint.Constraint` objects (``expr ≤ 0``,
``expr < 0`` or ``expr = 0`` with :class:`fractions.Fraction`
coefficients).  :func:`decide_system` decides feasibility over ℚ:

* equalities are removed by exact Gaussian substitution,
* the remaining inequalities by Fourier–Motzkin elimination — every
  derived row is a nonnegative combination of input rows, so an eventual
  contradiction (``c ≤ 0`` with ``c > 0``) is precisely the certificate
  of infeasibility promised by Farkas' lemma / the Motzkin transposition
  theorem;
* if elimination completes without contradiction the system is feasible,
  and a concrete rational :class:`Witness` point is reconstructed by
  back-substitution (and re-checked against the original system).

Fourier–Motzkin is complete over the rationals, including strict
inequalities, which is what makes the checker's "invalid" verdicts
trustworthy: they always come with a witness state.  The worst case is
exponential; a configurable row budget turns pathological blow-ups into
an explicit :class:`FarkasBudgetExceeded` instead of a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.linalg.sparse import SparseRow
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr

#: Sentinel row index carrying the affine constant (sorts first).
_CONST = -1

#: Default cap on the number of live rows during elimination.
DEFAULT_ROW_BUDGET = 50_000


class FarkasBudgetExceeded(Exception):
    """Fourier–Motzkin elimination exceeded its row budget."""


@dataclass
class Refutation:
    """Proof that the system has no rational solution."""

    reason: str
    eliminated_variables: int = 0
    combinations: int = 0

    @property
    def feasible(self) -> bool:
        return False


@dataclass
class Witness:
    """A rational point satisfying every constraint of the system."""

    assignment: Dict[str, Fraction] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return True

    def is_integral(self, names: Optional[Sequence[str]] = None) -> bool:
        """Whether the witness is integer-valued (on *names* if given)."""
        values = (
            self.assignment.values()
            if names is None
            else (self.assignment.get(name, Fraction(0)) for name in names)
        )
        return all(value.denominator == 1 for value in values)

    def to_dict(self) -> Dict[str, str]:
        return {name: str(value) for name, value in sorted(self.assignment.items())}


Decision = Union[Refutation, Witness]


# ---------------------------------------------------------------------------
# integer tightening (used by the checker's integer mode)
# ---------------------------------------------------------------------------


def tighten_integer_strict(
    constraints: Sequence[Constraint], is_integer
) -> List[Constraint]:
    """Replace ``e < 0`` by ``e + 1 ≤ 0`` where it is sound to do so.

    Sound when every variable of the atom is integer-valued (per the
    *is_integer* predicate on variable names) and all coefficients are
    integral.  Mirrors the front end's guard tightening; refuting the
    tightened system shows the original has no *integer* solution.
    """
    tightened: List[Constraint] = []
    for constraint in constraints:
        if (
            constraint.is_strict()
            and all(is_integer(name) for name in constraint.variables())
        ):
            tightened.append(constraint.tighten_for_integers())
        else:
            tightened.append(constraint)
    return tightened


# ---------------------------------------------------------------------------
# the decision procedure
# ---------------------------------------------------------------------------


def _evaluate(expr: LinExpr, assignment: Dict[str, Fraction]) -> Fraction:
    """Evaluate with absent variables defaulting to zero."""
    total = expr.constant_term
    for name, coefficient in expr.terms.items():
        total += coefficient * assignment.get(name, Fraction(0))
    return total


def _violates(constraint: Constraint, assignment: Dict[str, Fraction]) -> bool:
    value = _evaluate(constraint.expr, assignment)
    if constraint.relation is Relation.LE:
        return value > 0
    if constraint.relation is Relation.LT:
        return value >= 0
    return value != 0


def _pick_value(
    lowers: List[Tuple[Fraction, bool]], uppers: List[Tuple[Fraction, bool]]
) -> Fraction:
    """A value inside the interval described by evaluated bounds.

    Prefers an integer point when the interval contains one, so reported
    witnesses read like program states.  Ties between a strict and a
    non-strict bound at the same value must resolve to the *strict* one —
    it is the binding constraint (``x ≤ 5`` next to ``x < 5``).
    """
    lower: Optional[Tuple[Fraction, bool]] = (
        max(lowers, key=lambda bound: (bound[0], bound[1])) if lowers else None
    )
    upper: Optional[Tuple[Fraction, bool]] = (
        min(uppers, key=lambda bound: (bound[0], not bound[1])) if uppers else None
    )
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        value, strict = upper
        candidate = Fraction(_floor(value) - (1 if strict else 0))
        return candidate if candidate <= value else value - 1
    if upper is None:
        value, strict = lower
        candidate = Fraction(_ceil(value) + (1 if strict else 0))
        return candidate if candidate >= value else value + 1
    (lo, lo_strict), (up, up_strict) = lower, upper
    # Elimination already proved the interval non-empty.
    if lo == up:
        return lo
    ceil_lo = Fraction(_ceil(lo) + (1 if lo_strict and _ceil(lo) == lo else 0))
    if (ceil_lo > lo or (ceil_lo == lo and not lo_strict)) and (
        ceil_lo < up or (ceil_lo == up and not up_strict)
    ):
        return ceil_lo
    return (lo + up) / 2


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


def _sparse_of(constraint: Constraint, index_of: Dict[str, int]) -> SparseRow:
    """A constraint's left-hand side as a primitive-integer sparse row."""
    pairs: List[Tuple[int, Fraction]] = [
        (index_of[name], value)
        for name, value in constraint.expr.terms.items()
    ]
    constant = constraint.expr.constant_term
    if constant:
        pairs.append((_CONST, constant))
    # Dropping the (positive) denominator rescales the constraint, which
    # preserves it as a ≤/</= 0 atom.
    return SparseRow.from_pairs(pairs).normalized_direction()


def _constraint_of(
    row: SparseRow, strict: bool, names: Sequence[str]
) -> Constraint:
    """Materialise a row back into a constraint (messages, self-checks)."""
    terms: Dict[str, Fraction] = {}
    constant = Fraction(0)
    for index, value in row.items():
        if index == _CONST:
            constant = value
        else:
            terms[names[index]] = value
    return Constraint(
        LinExpr(terms, constant), Relation.LT if strict else Relation.LE
    )


def _evaluate_row(row: SparseRow, assignment: Dict[int, Fraction]) -> Fraction:
    """Evaluate a row (over variable indices) with absent variables zero."""
    total = Fraction(0)
    for index, value in row.items():
        if index == _CONST:
            total += value
        else:
            total += value * assignment.get(index, _FRACTION_ZERO)
    return total


_FRACTION_ZERO = Fraction(0)


def decide_system(
    constraints: Sequence[Constraint],
    row_budget: int = DEFAULT_ROW_BUDGET,
) -> Decision:
    """Decide rational feasibility of a conjunction of linear constraints.

    Returns a :class:`Refutation` (infeasible) or a :class:`Witness`
    (feasible, with a satisfying point).  Raises
    :class:`FarkasBudgetExceeded` when elimination outgrows *row_budget*.

    The elimination itself runs on GCD-normalised scaled-integer
    :class:`~repro.linalg.sparse.SparseRow` vectors (the same kernel the
    LP solver pivots on — but only the *row arithmetic* is shared, the
    decision logic stays independent): each combination is one fused
    integer multiply-add, and rows deduplicate structurally.  Fractions
    reappear only when the witness point is reconstructed.
    """
    pending_equalities: List[Constraint] = []
    pending_rows: List[Constraint] = []
    for constraint in constraints:
        if constraint.is_trivially_true():
            continue
        if constraint.is_trivially_false():
            return Refutation("constant constraint %s is false" % constraint)
        if constraint.is_equality():
            pending_equalities.append(constraint)
        else:
            pending_rows.append(constraint)

    names = sorted(
        {
            name
            for constraint in pending_equalities + pending_rows
            for name in constraint.expr.terms
        }
    )
    index_of = {name: position for position, name in enumerate(names)}
    equalities: List[SparseRow] = [
        _sparse_of(constraint, index_of) for constraint in pending_equalities
    ]
    rows: List[Tuple[SparseRow, bool]] = [
        (_sparse_of(constraint, index_of), constraint.is_strict())
        for constraint in pending_rows
    ]

    def is_constant(row: SparseRow) -> bool:
        return all(index == _CONST for index in row.support())

    # A log of eliminations, replayed backwards to build the witness:
    #   ("gauss", index, row)           x_index := row evaluated
    #   ("fm", index, lowers, uppers)   bounds as (row, strict) pairs
    log: List[tuple] = []
    eliminated = 0
    combinations = 0

    # -- Gaussian substitution of equalities --------------------------------
    while equalities:
        equality = equalities.pop()
        if is_constant(equality):
            if equality.numerator_at(_CONST):
                return Refutation(
                    "equality reduced to %s = 0" % equality.get(_CONST),
                    eliminated,
                    combinations,
                )
            continue
        index = next(i for i in equality.support() if i != _CONST)
        coefficient = equality.get(index)
        # x_index = (coefficient · x_index − equality) / coefficient.
        solved = SparseRow.from_pairs(
            [
                (i, Fraction(-numerator, 1) / coefficient)
                for i, numerator in equality.iter_scaled()
                if i != index
            ]
        )
        log.append(("gauss", index, solved))
        eliminated += 1

        equalities = [
            row.eliminate(index, equality).normalized_direction()
            if row.numerator_at(index)
            else row
            for row in equalities
        ]
        survivors: List[Tuple[SparseRow, bool]] = []
        for row, strict in rows:
            if row.numerator_at(index):
                row = row.eliminate(index, equality).normalized_direction()
            if is_constant(row):
                constant = row.numerator_at(_CONST)
                if constant > 0 or (strict and constant >= 0):
                    return Refutation(
                        "substituting %s yields %s"
                        % (names[index], _constraint_of(row, strict, names)),
                        eliminated,
                        combinations,
                    )
                continue  # trivially true
            survivors.append((row, strict))
        rows = survivors

    # -- Fourier–Motzkin on the inequalities --------------------------------
    while True:
        occurrences: Dict[int, Tuple[int, int]] = {}
        for row, _ in rows:
            for index, numerator in row.iter_scaled():
                if index == _CONST:
                    continue
                positive, negative = occurrences.get(index, (0, 0))
                if numerator > 0:
                    occurrences[index] = (positive + 1, negative)
                else:
                    occurrences[index] = (positive, negative + 1)
        if not occurrences:
            break

        def cost(index: int) -> Tuple[int, int]:
            positive, negative = occurrences[index]
            if positive == 0 or negative == 0:
                return (-1, index)  # free elimination first
            return (positive * negative - positive - negative, index)

        index = min(occurrences, key=cost)
        uppers: List[Tuple[SparseRow, bool]] = []  # coeff > 0: upper bounds
        lowers: List[Tuple[SparseRow, bool]] = []  # coeff < 0: lower bounds
        untouched: List[Tuple[SparseRow, bool]] = []
        for entry in rows:
            numerator = entry[0].numerator_at(index)
            if numerator > 0:
                uppers.append(entry)
            elif numerator < 0:
                lowers.append(entry)
            else:
                untouched.append(entry)

        def bound_pairs(
            pool: List[Tuple[SparseRow, bool]],
        ) -> List[Tuple[SparseRow, bool]]:
            pairs = []
            for row, strict in pool:
                coefficient = row.get(index)
                rest = SparseRow.from_pairs(
                    [
                        (i, Fraction(-numerator, 1) / coefficient)
                        for i, numerator in row.iter_scaled()
                        if i != index
                    ]
                )
                pairs.append((rest, strict))
            return pairs

        log.append(("fm", index, bound_pairs(lowers), bound_pairs(uppers)))
        eliminated += 1

        seen: Set[Tuple] = set()
        fresh: List[Tuple[SparseRow, bool]] = list(untouched)
        for upper, upper_strict in uppers:
            a = upper.numerator_at(index)
            for lower, lower_strict in lowers:
                b = lower.numerator_at(index)
                combined = upper.combine_int(-b, lower, a)
                combined = combined.normalized_direction()
                strict = upper_strict or lower_strict
                combinations += 1
                if is_constant(combined):
                    constant = combined.numerator_at(_CONST)
                    if constant > 0 or (strict and constant >= 0):
                        return Refutation(
                            "eliminating %s combines %s and %s into %s"
                            % (
                                names[index],
                                _constraint_of(upper, upper_strict, names),
                                _constraint_of(lower, lower_strict, names),
                                _constraint_of(combined, strict, names),
                            ),
                            eliminated,
                            combinations,
                        )
                    continue  # trivially true
                key = (combined.indices, combined.numerators, strict)
                if key in seen:
                    continue
                seen.add(key)
                fresh.append((combined, strict))
                if len(fresh) > row_budget:
                    raise FarkasBudgetExceeded(
                        "row budget %d exceeded while eliminating %r"
                        % (row_budget, names[index])
                    )
        rows = fresh

    # Feasible: rebuild a witness point by replaying the log backwards.
    indexed: Dict[int, Fraction] = {}
    for entry in reversed(log):
        if entry[0] == "fm":
            _, index, lower_pairs, upper_pairs = entry
            indexed[index] = _pick_value(
                [
                    (_evaluate_row(row, indexed), strict)
                    for row, strict in lower_pairs
                ],
                [
                    (_evaluate_row(row, indexed), strict)
                    for row, strict in upper_pairs
                ],
            )
        else:
            _, index, solved = entry
            indexed[index] = _evaluate_row(solved, indexed)

    assignment = {names[index]: value for index, value in indexed.items()}
    for constraint in constraints:
        if _violates(constraint, assignment):  # pragma: no cover - self-check
            raise AssertionError(
                "internal error: witness %r violates %s" % (assignment, constraint)
            )
    return Witness(assignment)


def is_infeasible(
    constraints: Sequence[Constraint],
    row_budget: int = DEFAULT_ROW_BUDGET,
) -> bool:
    """Convenience wrapper: ``True`` iff the system has no rational point."""
    return isinstance(decide_system(constraints, row_budget), Refutation)
