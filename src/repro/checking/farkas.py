"""Exact rational (in)feasibility of linear constraint systems.

This is the trusted core of the certificate checker, so it is written to
be audited by eye and shares **no code** with the LP solver or the SMT
stack it cross-examines.  A *system* is a list of
:class:`~repro.linexpr.constraint.Constraint` objects (``expr ≤ 0``,
``expr < 0`` or ``expr = 0`` with :class:`fractions.Fraction`
coefficients).  :func:`decide_system` decides feasibility over ℚ:

* equalities are removed by exact Gaussian substitution,
* the remaining inequalities by Fourier–Motzkin elimination — every
  derived row is a nonnegative combination of input rows, so an eventual
  contradiction (``c ≤ 0`` with ``c > 0``) is precisely the certificate
  of infeasibility promised by Farkas' lemma / the Motzkin transposition
  theorem;
* if elimination completes without contradiction the system is feasible,
  and a concrete rational :class:`Witness` point is reconstructed by
  back-substitution (and re-checked against the original system).

Fourier–Motzkin is complete over the rationals, including strict
inequalities, which is what makes the checker's "invalid" verdicts
trustworthy: they always come with a witness state.  The worst case is
exponential; a configurable row budget turns pathological blow-ups into
an explicit :class:`FarkasBudgetExceeded` instead of a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr

#: Default cap on the number of live rows during elimination.
DEFAULT_ROW_BUDGET = 50_000


class FarkasBudgetExceeded(Exception):
    """Fourier–Motzkin elimination exceeded its row budget."""


@dataclass
class Refutation:
    """Proof that the system has no rational solution."""

    reason: str
    eliminated_variables: int = 0
    combinations: int = 0

    @property
    def feasible(self) -> bool:
        return False


@dataclass
class Witness:
    """A rational point satisfying every constraint of the system."""

    assignment: Dict[str, Fraction] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return True

    def is_integral(self, names: Optional[Sequence[str]] = None) -> bool:
        """Whether the witness is integer-valued (on *names* if given)."""
        values = (
            self.assignment.values()
            if names is None
            else (self.assignment.get(name, Fraction(0)) for name in names)
        )
        return all(value.denominator == 1 for value in values)

    def to_dict(self) -> Dict[str, str]:
        return {name: str(value) for name, value in sorted(self.assignment.items())}


Decision = Union[Refutation, Witness]


# ---------------------------------------------------------------------------
# integer tightening (used by the checker's integer mode)
# ---------------------------------------------------------------------------


def tighten_integer_strict(
    constraints: Sequence[Constraint], is_integer
) -> List[Constraint]:
    """Replace ``e < 0`` by ``e + 1 ≤ 0`` where it is sound to do so.

    Sound when every variable of the atom is integer-valued (per the
    *is_integer* predicate on variable names) and all coefficients are
    integral.  Mirrors the front end's guard tightening; refuting the
    tightened system shows the original has no *integer* solution.
    """
    tightened: List[Constraint] = []
    for constraint in constraints:
        if (
            constraint.is_strict()
            and all(is_integer(name) for name in constraint.variables())
        ):
            tightened.append(constraint.tighten_for_integers())
        else:
            tightened.append(constraint)
    return tightened


# ---------------------------------------------------------------------------
# the decision procedure
# ---------------------------------------------------------------------------


def _evaluate(expr: LinExpr, assignment: Dict[str, Fraction]) -> Fraction:
    """Evaluate with absent variables defaulting to zero."""
    total = expr.constant_term
    for name, coefficient in expr.terms.items():
        total += coefficient * assignment.get(name, Fraction(0))
    return total


def _violates(constraint: Constraint, assignment: Dict[str, Fraction]) -> bool:
    value = _evaluate(constraint.expr, assignment)
    if constraint.relation is Relation.LE:
        return value > 0
    if constraint.relation is Relation.LT:
        return value >= 0
    return value != 0


def _pick_value(
    lowers: List[Tuple[Fraction, bool]], uppers: List[Tuple[Fraction, bool]]
) -> Fraction:
    """A value inside the interval described by evaluated bounds.

    Prefers an integer point when the interval contains one, so reported
    witnesses read like program states.  Ties between a strict and a
    non-strict bound at the same value must resolve to the *strict* one —
    it is the binding constraint (``x ≤ 5`` next to ``x < 5``).
    """
    lower: Optional[Tuple[Fraction, bool]] = (
        max(lowers, key=lambda bound: (bound[0], bound[1])) if lowers else None
    )
    upper: Optional[Tuple[Fraction, bool]] = (
        min(uppers, key=lambda bound: (bound[0], not bound[1])) if uppers else None
    )
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        value, strict = upper
        candidate = Fraction(_floor(value) - (1 if strict else 0))
        return candidate if candidate <= value else value - 1
    if upper is None:
        value, strict = lower
        candidate = Fraction(_ceil(value) + (1 if strict else 0))
        return candidate if candidate >= value else value + 1
    (lo, lo_strict), (up, up_strict) = lower, upper
    # Elimination already proved the interval non-empty.
    if lo == up:
        return lo
    ceil_lo = Fraction(_ceil(lo) + (1 if lo_strict and _ceil(lo) == lo else 0))
    if (ceil_lo > lo or (ceil_lo == lo and not lo_strict)) and (
        ceil_lo < up or (ceil_lo == up and not up_strict)
    ):
        return ceil_lo
    return (lo + up) / 2


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


def decide_system(
    constraints: Sequence[Constraint],
    row_budget: int = DEFAULT_ROW_BUDGET,
) -> Decision:
    """Decide rational feasibility of a conjunction of linear constraints.

    Returns a :class:`Refutation` (infeasible) or a :class:`Witness`
    (feasible, with a satisfying point).  Raises
    :class:`FarkasBudgetExceeded` when elimination outgrows *row_budget*.
    """
    equalities: List[Constraint] = []
    rows: List[Constraint] = []
    for constraint in constraints:
        if constraint.is_trivially_true():
            continue
        if constraint.is_trivially_false():
            return Refutation("constant constraint %s is false" % constraint)
        if constraint.is_equality():
            equalities.append(constraint)
        else:
            rows.append(constraint)

    # A log of eliminations, replayed backwards to build the witness:
    #   ("gauss", name, expr)          name := expr over later variables
    #   ("fm", name, lowers, uppers)   bounds as (expr, strict) pairs
    log: List[tuple] = []
    eliminated = 0
    combinations = 0

    # -- Gaussian substitution of equalities --------------------------------
    while equalities:
        equality = equalities.pop()
        terms = equality.expr.terms
        if not terms:
            if equality.expr.constant_term != 0:
                return Refutation(
                    "equality reduced to %s = 0" % equality.expr.constant_term,
                    eliminated,
                    combinations,
                )
            continue
        name = min(terms)
        coefficient = terms[name]
        solved = (LinExpr({name: coefficient}) - equality.expr) / coefficient
        log.append(("gauss", name, solved))
        eliminated += 1
        substitution = {name: solved}

        def substitute(pool: List[Constraint]) -> Optional[Refutation]:
            for index, row in enumerate(pool):
                if name in row.expr.terms:
                    pool[index] = row.substitute(substitution)
            return None

        substitute(equalities)
        substitute(rows)
        survivors: List[Constraint] = []
        for row in rows:
            if row.is_trivially_true():
                continue
            if row.is_trivially_false():
                return Refutation(
                    "substituting %s yields %s" % (name, row),
                    eliminated,
                    combinations,
                )
            survivors.append(row)
        rows = survivors

    # -- Fourier–Motzkin on the inequalities --------------------------------
    while True:
        occurrences: Dict[str, Tuple[int, int]] = {}
        for row in rows:
            for name, coefficient in row.expr.terms.items():
                positive, negative = occurrences.get(name, (0, 0))
                if coefficient > 0:
                    occurrences[name] = (positive + 1, negative)
                else:
                    occurrences[name] = (positive, negative + 1)
        if not occurrences:
            break

        def cost(name: str) -> Tuple[int, str]:
            positive, negative = occurrences[name]
            if positive == 0 or negative == 0:
                return (-1, name)  # free elimination first
            return (positive * negative - positive - negative, name)

        name = min(occurrences, key=cost)
        uppers: List[Constraint] = []  # coefficient > 0: bounds from above
        lowers: List[Constraint] = []  # coefficient < 0: bounds from below
        untouched: List[Constraint] = []
        for row in rows:
            coefficient = row.expr.coefficient(name)
            if coefficient > 0:
                uppers.append(row)
            elif coefficient < 0:
                lowers.append(row)
            else:
                untouched.append(row)

        def bound_pairs(pool: List[Constraint]) -> List[Tuple[LinExpr, bool]]:
            pairs = []
            for row in pool:
                coefficient = row.expr.coefficient(name)
                rest = row.expr - LinExpr({name: coefficient})
                pairs.append((rest * (Fraction(-1) / coefficient), row.is_strict()))
            return pairs

        log.append(("fm", name, bound_pairs(lowers), bound_pairs(uppers)))
        eliminated += 1

        seen: Set[Tuple] = set()
        fresh: List[Constraint] = list(untouched)
        for upper in uppers:
            a = upper.expr.coefficient(name)
            for lower in lowers:
                b = lower.expr.coefficient(name)
                combined_expr = upper.expr * (-b) + lower.expr * a
                relation = (
                    Relation.LT
                    if upper.is_strict() or lower.is_strict()
                    else Relation.LE
                )
                combined = Constraint(combined_expr, relation).normalized()
                combinations += 1
                if combined.is_trivially_true():
                    continue
                if combined.is_trivially_false():
                    return Refutation(
                        "eliminating %s combines %s and %s into %s"
                        % (name, upper, lower, combined),
                        eliminated,
                        combinations,
                    )
                key = (tuple(sorted(combined.expr.terms.items())),
                       combined.expr.constant_term,
                       combined.relation)
                if key in seen:
                    continue
                seen.add(key)
                fresh.append(combined)
                if len(fresh) > row_budget:
                    raise FarkasBudgetExceeded(
                        "row budget %d exceeded while eliminating %r"
                        % (row_budget, name)
                    )
        rows = fresh

    # Feasible: rebuild a witness point by replaying the log backwards.
    assignment: Dict[str, Fraction] = {}
    for entry in reversed(log):
        if entry[0] == "fm":
            _, name, lower_pairs, upper_pairs = entry
            assignment[name] = _pick_value(
                [(_evaluate(expr, assignment), strict) for expr, strict in lower_pairs],
                [(_evaluate(expr, assignment), strict) for expr, strict in upper_pairs],
            )
        else:
            _, name, solved = entry
            assignment[name] = _evaluate(solved, assignment)

    for constraint in constraints:
        if _violates(constraint, assignment):  # pragma: no cover - self-check
            raise AssertionError(
                "internal error: witness %r violates %s" % (assignment, constraint)
            )
    return Witness(assignment)


def is_infeasible(
    constraints: Sequence[Constraint],
    row_budget: int = DEFAULT_ROW_BUDGET,
) -> bool:
    """Convenience wrapper: ``True`` iff the system has no rational point."""
    return isinstance(decide_system(constraints, row_budget), Refutation)
