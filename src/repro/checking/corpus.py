"""Reading and writing the checked-in corpus of generated programs.

The corpus (``tests/corpus/*.imp``) freezes interesting generator output
— one program per file, the generator's provenance header intact — so
past fuzz coverage replays as fast, deterministic unit tests without
re-running the generator.  Shrunk reproducers of any future soundness
violation land here too, turning every found bug into a permanent
regression test.

Regenerate or extend with::

    PYTHONPATH=src python -m repro.checking.corpus tests/corpus --count 25
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Sequence

from repro.checking.generator import (
    GeneratedProgram,
    ProgramGenerator,
    UNKNOWN,
    expected_from_source,
)


@dataclass
class CorpusProgram:
    """One corpus entry: a name, its source, and the expected class."""

    name: str
    source: str
    expected: str


def write_corpus(
    programs: Sequence[GeneratedProgram], directory: str
) -> List[str]:
    """Write *programs* one-per-file into *directory*; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for program in programs:
        path = os.path.join(directory, "%s.imp" % program.name)
        with open(path, "w") as handle:
            handle.write(program.source)
        paths.append(path)
    return paths


def load_corpus(directory: str) -> List[CorpusProgram]:
    """Load every ``*.imp`` file of *directory*, sorted by name."""
    entries: List[CorpusProgram] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".imp"):
            continue
        path = os.path.join(directory, filename)
        with open(path) as handle:
            source = handle.read()
        entries.append(
            CorpusProgram(
                name=filename[: -len(".imp")],
                source=source,
                expected=expected_from_source(source) or UNKNOWN,
            )
        )
    return entries


def main(argv=None) -> int:  # pragma: no cover - maintenance entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=25)
    parser.add_argument("--start", type=int, default=0)
    arguments = parser.parse_args(argv)
    generator = ProgramGenerator(arguments.seed)
    paths = write_corpus(
        list(generator.programs(arguments.count, start=arguments.start)),
        arguments.directory,
    )
    for path in paths:
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
