"""Verification-grade test infrastructure: check, generate, cross-examine.

The synthesis pipeline proves termination; this package audits it.  Three
pillars, deliberately independent of the LP/SMT machinery they audit:

* :mod:`repro.checking.farkas` — a self-contained decision procedure for
  conjunctions of linear constraints over exact rationals
  (Gauss + Fourier–Motzkin).  It either *refutes* a system (producing the
  nonnegative-combination contradiction Farkas' lemma promises) or
  exhibits a rational witness point.  It shares no code with
  :mod:`repro.lp` or :mod:`repro.smt`.
* :mod:`repro.checking.checker` — re-verifies a synthesised lexicographic
  ranking function against the program's large-block transition relation,
  obligation by obligation (Definition 6 of the paper).
* :mod:`repro.checking.generator` / :mod:`repro.checking.differential` —
  a seeded random program generator (with greedy shrinking) and the
  harness that runs every registered prover on each generated program,
  audits every claimed certificate, and flags soundness violations.

Exposed on the ``repro`` CLI as ``repro check`` and ``repro fuzz``.
"""

from repro.checking.checker import (
    CertificateVerdict,
    ObligationFailure,
    check_ranking,
)
from repro.checking.recurrence import check_recurrence
from repro.checking.differential import (
    FuzzReport,
    SoundnessViolation,
    audit_generated_program,
    audit_source,
    default_fuzz_config,
    fuzz,
    run_differential,
)
from repro.checking.farkas import (
    FarkasBudgetExceeded,
    Refutation,
    Witness,
    decide_system,
)
from repro.checking.generator import (
    GeneratedProgram,
    ProgramGenerator,
    SHAPES,
    shrink_program,
)

__all__ = [
    "CertificateVerdict",
    "ObligationFailure",
    "check_ranking",
    "check_recurrence",
    "FarkasBudgetExceeded",
    "Refutation",
    "Witness",
    "decide_system",
    "GeneratedProgram",
    "ProgramGenerator",
    "SHAPES",
    "shrink_program",
    "FuzzReport",
    "SoundnessViolation",
    "audit_generated_program",
    "audit_source",
    "default_fuzz_config",
    "fuzz",
    "run_differential",
]
