"""Seeded random generation of well-formed mini-language programs.

The generator emits programs across *shape classes* chosen to exercise
the whole pipeline: plain countdowns, nested loops, multipath loop
bodies, phase/race loops, nondeterministic updates, structurally random
programs, and — crucially for the differential harness — gadgets that
are **nonterminating by construction** (they admit an infinite run from
a reachable state), giving the harness ground truth no prover may
contradict.

Programs are built in a tiny structured IR (not the front-end AST) so
that failing cases can be *shrunk*: :func:`shrink_program` greedily
applies semantics-agnostic simplifications (drop a statement, unwrap a
loop, keep one branch of a conditional, simplify an assignment) while a
caller-supplied predicate still fails, and re-renders source after each
step.  Rendering is deterministic, so a ``(seed, index)`` pair printed
in a fuzz report is a complete reproducer:

    ProgramGenerator(seed).generate(index).source
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

#: Ground-truth classifications attached to generated programs.
TERMINATING = "terminating"
NONTERMINATING = "nonterminating"
UNKNOWN = "unknown"

#: The shape classes, cycled through by program index so every class is
#: exercised even in short fuzz runs.
SHAPES = (
    "countdown",
    "nested",
    "multipath",
    "phase",
    "nondet",
    "random",
    "nonterm",
)


# ---------------------------------------------------------------------------
# the generator IR and its renderer
# ---------------------------------------------------------------------------


@dataclass
class GSkip:
    def render(self) -> str:
        return "skip;"


@dataclass
class GAssign:
    target: str
    terms: List[Tuple[int, str]]  # (coefficient, variable)
    constant: int = 0

    def render(self) -> str:
        return "%s = %s;" % (self.target, render_expression(self.terms, self.constant))


@dataclass
class GHavoc:
    target: str

    def render(self) -> str:
        return "%s = nondet();" % self.target


@dataclass
class GCond:
    """A condition: a comparison, ``nondet()``, or a binary and/or."""

    kind: str  # "cmp" | "nondet" | "and" | "or"
    terms: List[Tuple[int, str]] = field(default_factory=list)
    op: str = ">"
    constant: int = 0
    left: Optional["GCond"] = None
    right: Optional["GCond"] = None

    def render(self) -> str:
        if self.kind == "nondet":
            return "nondet()"
        if self.kind == "cmp":
            return "%s %s %d" % (
                render_expression(self.terms, 0),
                self.op,
                self.constant,
            )
        return "(%s) %s (%s)" % (self.left.render(), self.kind, self.right.render())

    def variables(self) -> List[str]:
        if self.kind == "cmp":
            return [name for _, name in self.terms]
        if self.kind in ("and", "or"):
            return self.left.variables() + self.right.variables()
        return []


@dataclass
class GAssume:
    condition: GCond

    def render(self) -> str:
        return "assume(%s);" % self.condition.render()


@dataclass
class GIf:
    condition: GCond
    then: List = field(default_factory=list)
    orelse: Optional[List] = None


@dataclass
class GWhile:
    condition: GCond
    body: List = field(default_factory=list)


def render_expression(terms: Sequence[Tuple[int, str]], constant: int) -> str:
    """``2*x - y + 3`` in the mini-language's expression grammar."""
    pieces: List[str] = []
    for coefficient, name in terms:
        if coefficient == 0:
            continue
        magnitude = name if abs(coefficient) == 1 else "%d*%s" % (abs(coefficient), name)
        if not pieces:
            pieces.append(magnitude if coefficient > 0 else "-%s" % magnitude)
        else:
            pieces.append("%s %s" % ("+" if coefficient > 0 else "-", magnitude))
    if constant or not pieces:
        if not pieces:
            pieces.append(str(constant))
        else:
            pieces.append("%s %d" % ("+" if constant > 0 else "-", abs(constant)))
    return " ".join(pieces)


def _render_block(statements: Sequence, indent: int, lines: List[str]) -> None:
    pad = "    " * indent
    for statement in statements:
        if isinstance(statement, GIf):
            lines.append("%sif (%s) {" % (pad, statement.condition.render()))
            _render_block(statement.then, indent + 1, lines)
            if statement.orelse is not None:
                lines.append("%s} else {" % pad)
                _render_block(statement.orelse, indent + 1, lines)
            lines.append("%s}" % pad)
        elif isinstance(statement, GWhile):
            lines.append("%swhile (%s) {" % (pad, statement.condition.render()))
            body = statement.body or [GSkip()]
            _render_block(body, indent + 1, lines)
            lines.append("%s}" % pad)
        else:
            lines.append("%s%s" % (pad, statement.render()))


def _collect_variables(statements: Sequence, into: List[str]) -> None:
    def note(name: str) -> None:
        if name not in into:
            into.append(name)

    for statement in statements:
        if isinstance(statement, (GAssign, GHavoc)):
            note(statement.target)
            if isinstance(statement, GAssign):
                for _, name in statement.terms:
                    note(name)
        elif isinstance(statement, GAssume):
            for name in statement.condition.variables():
                note(name)
        elif isinstance(statement, GIf):
            for name in statement.condition.variables():
                note(name)
            _collect_variables(statement.then, into)
            if statement.orelse is not None:
                _collect_variables(statement.orelse, into)
        elif isinstance(statement, GWhile):
            for name in statement.condition.variables():
                note(name)
            _collect_variables(statement.body, into)


@dataclass
class GeneratedProgram:
    """One generated program: IR, rendered source, and its ground truth."""

    name: str
    seed: int
    index: int
    shape: str
    expected: str
    statements: List = field(default_factory=list)

    @property
    def source(self) -> str:
        lines = [
            "// generated by repro.checking.generator",
            "// seed=%d index=%d shape=%s expected=%s"
            % (self.seed, self.index, self.shape, self.expected),
        ]
        variables: List[str] = []
        _collect_variables(self.statements, variables)
        if variables:
            lines.append("var %s;" % ", ".join(sorted(variables)))
        _render_block(self.statements, 0, lines)
        return "\n".join(lines) + "\n"

    def replaced(self, statements: List) -> "GeneratedProgram":
        return GeneratedProgram(
            name=self.name,
            seed=self.seed,
            index=self.index,
            shape=self.shape,
            expected=self.expected,
            statements=statements,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "index": self.index,
            "shape": self.shape,
            "expected": self.expected,
            "source": self.source,
        }


def expected_from_source(source: str) -> str:
    """Recover the ``expected=`` classification from a rendered header."""
    for line in source.splitlines():
        if "expected=" in line:
            return line.split("expected=")[1].split()[0]
    return UNKNOWN


# ---------------------------------------------------------------------------
# shape builders
# ---------------------------------------------------------------------------


def _cmp(terms, op, constant=0) -> GCond:
    return GCond(kind="cmp", terms=list(terms), op=op, constant=constant)


def _nondet() -> GCond:
    return GCond(kind="nondet")


class ProgramGenerator:
    """Deterministic, seed-addressable program generation."""

    def __init__(self, seed: int = 0, shapes: Sequence[str] = SHAPES):
        self.seed = seed
        self.shapes = tuple(shapes)
        for shape in self.shapes:
            if shape not in SHAPES:
                raise ValueError(
                    "unknown shape %r (available: %s)" % (shape, ", ".join(SHAPES))
                )

    def generate(self, index: int) -> GeneratedProgram:
        """The *index*-th program of this seed (stable across runs)."""
        shape = self.shapes[index % len(self.shapes)]
        # String seeding is stable across Python versions and decouples
        # every (seed, index) cell from the others.
        rng = random.Random("repro-fuzz:%d:%d" % (self.seed, index))
        statements, expected = getattr(self, "_shape_" + shape)(rng)
        return GeneratedProgram(
            name="fuzz-%d-%d-%s" % (self.seed, index, shape),
            seed=self.seed,
            index=index,
            shape=shape,
            expected=expected,
            statements=statements,
        )

    def programs(self, count: int, start: int = 0) -> Iterator[GeneratedProgram]:
        for index in range(start, start + count):
            yield self.generate(index)

    # -- terminating shapes ------------------------------------------------------

    def _shape_countdown(self, rng: random.Random):
        step = rng.randint(1, 3)
        body: List = [GAssign("x", [(1, "x")], -step)]
        if rng.random() < 0.5:
            body.append(GAssign("y", [(1, "y")], rng.randint(1, 2)))
        statements: List = []
        if rng.random() < 0.5:
            statements.append(
                GAssume(_cmp([(1, "x")], "<=", rng.randint(5, 50)))
            )
        statements.append(GWhile(_cmp([(1, "x")], ">", 0), body))
        return statements, TERMINATING

    def _shape_nested(self, rng: random.Random):
        reset = (
            GAssign("j", [(1, "i")], rng.randint(0, 3))
            if rng.random() < 0.5
            else GAssign("j", [], rng.randint(1, 8))
        )
        inner = GWhile(
            _cmp([(1, "j")], ">", 0),
            [GAssign("j", [(1, "j")], -rng.randint(1, 2))],
        )
        outer_body: List = [GAssign("i", [(1, "i")], -1), reset, inner]
        rng.shuffle(outer_body)
        # The decrement must come before or after the inner loop, but the
        # reset must precede the inner loop for the shape to make sense.
        outer_body.remove(reset)
        outer_body.insert(outer_body.index(inner), reset)
        return [GWhile(_cmp([(1, "i")], ">", 0), outer_body)], TERMINATING

    def _shape_multipath(self, rng: random.Random):
        a, b = rng.randint(1, 3), rng.randint(1, 3)
        guard = _cmp([(1, "x"), (1, "y")], ">", 0)
        branch = GIf(
            _cmp([(1, "x")], ">", rng.randint(0, 2)),
            [GAssign("x", [(1, "x")], -a)],
            [GAssign("y", [(1, "y")], -b)],
        )
        body: List = [branch]
        if rng.random() < 0.4:
            body.append(GAssign("z", [(1, "x"), (1, "y")], 0))
        return [GWhile(guard, body)], TERMINATING

    def _shape_phase(self, rng: random.Random):
        if rng.random() < 0.5:
            # A race: the gap n - x shrinks whichever branch runs.
            body = [
                GIf(
                    _nondet(),
                    [GAssign("x", [(1, "x")], rng.randint(1, 2))],
                    [GAssign("n", [(1, "n")], -rng.randint(1, 2))],
                )
            ]
            return [GWhile(_cmp([(1, "x"), (-1, "n")], "<", 0), body)], TERMINATING
        # Two sequential loops.
        first = GWhile(
            _cmp([(1, "x"), (-1, "n")], "<", 0),
            [GAssign("x", [(1, "x")], rng.randint(1, 2))],
        )
        second = GWhile(
            _cmp([(1, "n")], ">", 0), [GAssign("n", [(1, "n")], -1)]
        )
        return [first, second], TERMINATING

    def _shape_nondet(self, rng: random.Random):
        if rng.random() < 0.5:
            # The paper's flagship example: lexicographic ⟨x, y⟩.
            body = [
                GIf(
                    _nondet(),
                    [GAssign("x", [(1, "x")], -1), GHavoc("y")],
                    [GAssign("y", [(1, "y")], -1)],
                )
            ]
            guard = GCond(
                kind="and",
                left=_cmp([(1, "x")], ">", 0),
                right=_cmp([(1, "y")], ">", 0),
            )
            return [GWhile(guard, body)], TERMINATING
        body = [GAssign("x", [(1, "x")], -rng.randint(1, 2)), GHavoc("y")]
        rng.shuffle(body)
        return [GWhile(_cmp([(1, "x")], ">", 0), body)], TERMINATING

    # -- structurally random (no ground truth) -----------------------------------

    # Structurally random programs are kept deliberately small: a single
    # extra nesting level multiplies the path count every analysis (and
    # the checker's DNF) must cover, and the goal here is many cheap,
    # diverse programs rather than a few enormous ones.
    _RANDOM_VARIABLES = ("x", "y")

    def _random_expression(self, rng: random.Random) -> Tuple[List[Tuple[int, str]], int]:
        terms = [
            (rng.choice([-2, -1, 1, 1, 2]), name)
            for name in rng.sample(
                self._RANDOM_VARIABLES, rng.randint(1, 2)
            )
        ]
        return terms, rng.randint(-3, 3)

    def _random_condition(self, rng: random.Random, loop_guard: bool = False) -> GCond:
        if not loop_guard and rng.random() < 0.15:
            return _nondet()
        terms, _ = self._random_expression(rng)
        # Equality-style guards (and disjunctive `!=`) multiply paths;
        # keep them for branch conditions only.
        operators = [">", ">=", "<", "<="] if loop_guard else [
            ">", ">=", "<", "<=", "==", "!=",
        ]
        return _cmp(terms, rng.choice(operators), rng.randint(-2, 4))

    def _random_body(self, rng: random.Random, allow_branch: bool) -> List:
        statements: List = []
        for _ in range(rng.randint(1, 2)):
            roll = rng.random()
            if roll < 0.7 or not allow_branch:
                target = rng.choice(self._RANDOM_VARIABLES)
                if rng.random() < 0.2:
                    statements.append(GHavoc(target))
                else:
                    terms, constant = self._random_expression(rng)
                    statements.append(GAssign(target, terms, constant))
            else:
                statements.append(
                    GIf(
                        self._random_condition(rng),
                        self._random_body(rng, False),
                        self._random_body(rng, False)
                        if rng.random() < 0.5
                        else None,
                    )
                )
        return statements or [GSkip()]

    def _shape_random(self, rng: random.Random):
        statements: List = []
        for _ in range(rng.randint(1, 2)):
            if rng.random() < 0.75:
                statements.append(
                    GWhile(
                        self._random_condition(rng, loop_guard=True),
                        self._random_body(rng, allow_branch=True),
                    )
                )
            else:
                statements.extend(self._random_body(rng, allow_branch=True))
        return statements, UNKNOWN

    # -- nonterminating gadgets ----------------------------------------------------

    def _shape_nonterm(self, rng: random.Random):
        gadget = rng.randrange(5)
        if gadget == 0:
            # Growth: x only moves away from the exit once inside.
            growth = rng.randint(0, 2)
            return [
                GWhile(_cmp([(1, "x")], ">", 0), [GAssign("x", [(1, "x")], growth)])
            ], NONTERMINATING
        if gadget == 1:
            # A preserved gap: x != y is invariant under the joint step.
            return [
                GWhile(
                    _cmp([(1, "x"), (-1, "y")], "!=", 0),
                    [
                        GAssign("x", [(1, "x")], 1),
                        GAssign("y", [(1, "y")], 1),
                    ],
                )
            ], NONTERMINATING
        if gadget == 2:
            # Climb by an assumed-positive stride.
            return [
                GAssume(_cmp([(1, "k")], ">=", 1)),
                GWhile(
                    _cmp([(1, "i")], ">=", 0),
                    [GAssign("i", [(1, "i"), (1, "k")], 0)],
                ),
            ], NONTERMINATING
        if gadget == 3:
            # The demon may always choose to stay in the loop.
            return [
                GWhile(
                    _cmp([(1, "x")], ">", 0),
                    [GHavoc("x"), GAssume(_cmp([(1, "x")], ">=", 1))],
                )
            ], NONTERMINATING
        # Pure spin.
        return [GWhile(_cmp([(1, "x")], ">", 0), [GSkip()])], NONTERMINATING


# ---------------------------------------------------------------------------
# greedy shrinking
# ---------------------------------------------------------------------------


def _candidate_edits(statements: List) -> Iterator[List]:
    """Structurally smaller variants of a statement list, one edit each."""
    for index, statement in enumerate(statements):
        without = statements[:index] + statements[index + 1 :]
        yield without
        if isinstance(statement, GWhile):
            yield statements[:index] + statement.body + statements[index + 1 :]
            for body in _candidate_edits(statement.body):
                if body:
                    yield statements[:index] + [
                        GWhile(statement.condition, body)
                    ] + statements[index + 1 :]
        elif isinstance(statement, GIf):
            yield statements[:index] + statement.then + statements[index + 1 :]
            if statement.orelse is not None:
                yield statements[:index] + statement.orelse + statements[index + 1 :]
                yield statements[:index] + [
                    GIf(statement.condition, statement.then, None)
                ] + statements[index + 1 :]
            for then in _candidate_edits(statement.then):
                yield statements[:index] + [
                    GIf(statement.condition, then, statement.orelse)
                ] + statements[index + 1 :]
        elif isinstance(statement, GAssign):
            if len(statement.terms) > 1:
                for drop in range(len(statement.terms)):
                    terms = statement.terms[:drop] + statement.terms[drop + 1 :]
                    yield statements[:index] + [
                        GAssign(statement.target, terms, statement.constant)
                    ] + statements[index + 1 :]
            if statement.constant != 0:
                yield statements[:index] + [
                    GAssign(statement.target, statement.terms, 0)
                ] + statements[index + 1 :]


def shrink_program(
    program: GeneratedProgram,
    still_failing: Callable[[GeneratedProgram], bool],
    max_checks: int = 150,
) -> GeneratedProgram:
    """Greedily shrink *program* while *still_failing* holds.

    Applies the first accepted edit and restarts, so the result is a
    local minimum: no single candidate edit preserves the failure.  The
    predicate is invoked at most *max_checks* times; the original program
    is returned unchanged if it stops failing (flaky predicate) on entry.
    """
    if not still_failing(program):
        return program
    current = program
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for statements in _candidate_edits(copy.deepcopy(current.statements)):
            if checks >= max_checks:
                break
            checks += 1
            candidate = current.replaced(statements)
            if still_failing(candidate):
                current = candidate
                improved = True
                break
    return current
