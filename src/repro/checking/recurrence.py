"""Independent re-verification of lasso (recurrence-set) witnesses.

Given a :class:`~repro.program.automaton.ControlFlowAutomaton` and a
:class:`~repro.nontermination.witness.Lasso` claimed by the
nontermination engine, re-establish nontermination **without trusting the
engine**: the only thing shared with it is the witness datatype.

The claim decomposes into one universally quantified half and one
concrete half, and the checker discharges both:

1. **Closure (Farkas).**  The checker rebuilds the symbolic pass around
   the cycle *itself* — from the automaton's transitions, the lasso's
   guard-conjunct indices (into the checker's own deterministic DNF
   expansion, so any valid index under-approximates the real guard) and
   its affine havoc choices — obtaining the pulled-back guard rows and
   the affine map ``F``.  It then refutes, with the exact
   :mod:`repro.checking.farkas` engine, every way a state of ``S`` could
   fail to take the pass or escape it: ``S ∧ ¬g`` for each pulled-back
   guard row ``g`` and ``S ∧ ¬r(F(x))`` for each row ``r`` of ``S``.
   Strict atoms over the automaton's integer variables are tightened
   (integer reasoning is not optional here — the witness claims
   nontermination of the *integer* program), and an unrefuted obligation
   admitting only a non-integral witness is *inconclusive*, not invalid.

2. **Reachability (replay).**  The initial state is checked against the
   initial condition, the stem is step-executed against the real guards
   and updates (havocs take the recorded concrete values), the landing
   state must lie in ``S``, and the cycle is then unrolled
   ``REPLAY_ITERATIONS`` times concretely — havocs take their affine
   choice evaluated at the *entry* state of the iteration — with the
   state required to stay in ``S`` and integral on integer variables.

Together: a real state in ``S`` exists and every ``S``-state has a legal
successor in ``S``, hence an infinite execution exists.  For integer
programs the checker additionally verifies that ``F`` maps integer
states to integer states (integral coefficients, no rational-variable
leakage into integer slots); failing that the verdict is inconclusive.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional

from repro.checking import farkas
from repro.checking.checker import CertificateVerdict, ObligationFailure
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import And, Atom, Formula, Not, Or, _Constant
from repro.linexpr.transform import dnf_conjunctions
from repro.nontermination.witness import Lasso
from repro.program.automaton import ControlFlowAutomaton

#: Concrete cycle iterations unrolled during replay.
REPLAY_ITERATIONS = 2


class _StructureError(Exception):
    """The lasso does not even parse against the automaton."""


def _negate_branches(constraint: Constraint) -> List[Constraint]:
    """Branches of ``¬constraint`` (each must be refuted separately)."""
    if constraint.is_equality():
        return [
            Constraint(constraint.expr, Relation.LT),
            Constraint(-constraint.expr, Relation.LT),
        ]
    return [constraint.negate()]


def _holds(formula: Formula, state: Dict[str, Fraction]) -> bool:
    """Concrete truth of *formula*; ``Exists`` is conservatively false."""
    if isinstance(formula, _Constant):
        return formula.value
    if isinstance(formula, Atom):
        return formula.constraint.satisfied_by(state)
    if isinstance(formula, And):
        return all(_holds(op, state) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_holds(op, state) for op in formula.operands)
    if isinstance(formula, Not):
        return not _holds(formula.operand, state)
    return False


def _rebuild_pass(automaton: ControlFlowAutomaton, lasso: Lasso):
    """Re-derive (pulled-back guard rows, affine map F) from the lasso.

    Raises :class:`_StructureError` on any structural mismatch; the
    engine's claims are never taken on faith.
    """
    variables = list(automaton.variables)
    transitions = automaton.transitions
    if not lasso.cycle:
        raise _StructureError("empty cycle")
    state = {v: LinExpr.variable(v) for v in variables}
    guard_rows: List[Constraint] = []
    location = lasso.cutpoint
    for position, step in enumerate(lasso.cycle):
        if not 0 <= step.transition < len(transitions):
            raise _StructureError(
                "cycle step %d: transition index %d out of range"
                % (position, step.transition)
            )
        transition = transitions[step.transition]
        if transition.source != location:
            raise _StructureError(
                "cycle step %d: transition leaves %s, not %s"
                % (position, transition.source, location)
            )
        conjuncts = dnf_conjunctions(transition.guard)
        if not 0 <= step.conjunct < len(conjuncts):
            raise _StructureError(
                "cycle step %d: guard conjunct %d out of range"
                % (position, step.conjunct)
            )
        for row in conjuncts[step.conjunct]:
            pulled = row.substitute(state)
            if pulled.is_trivially_false():
                raise _StructureError(
                    "cycle step %d: chosen guard conjunct is infeasible"
                    % position
                )
            if not pulled.is_trivially_true():
                guard_rows.append(pulled)
        havocs = {v for v, expr in transition.updates.items() if expr is None}
        if set(step.choices) != havocs:
            raise _StructureError(
                "cycle step %d: choices %s do not match havocs %s"
                % (position, sorted(step.choices), sorted(havocs))
            )
        new_state = dict(state)
        for v in variables:
            if v not in transition.updates:
                continue
            expr = transition.updates[v]
            if expr is None:
                choice = step.choices[v]
                if not choice.variables() <= set(variables):
                    raise _StructureError(
                        "cycle step %d: choice for %s mentions non-program "
                        "variables" % (position, v)
                    )
                new_state[v] = choice
            else:
                new_state[v] = expr.substitute(state)
        state = new_state
        location = transition.target
    if location != lasso.cutpoint:
        raise _StructureError(
            "cycle ends at %s, not at the cutpoint %s"
            % (location, lasso.cutpoint)
        )
    return guard_rows, state


def _integrality_note(
    automaton: ControlFlowAutomaton, f_map: Dict[str, LinExpr]
) -> Optional[str]:
    """Why ``F`` might not preserve integer states, or ``None`` if it does."""
    integers = automaton.integer_variables
    for v in integers:
        expr = f_map[v]
        if expr.constant_term.denominator != 1:
            return "F(%s) has a non-integral constant" % v
        for name, coeff in expr.terms.items():
            if name not in integers:
                return "F(%s) depends on non-integer variable %s" % (v, name)
            if coeff.denominator != 1:
                return "F(%s) has a non-integral coefficient on %s" % (v, name)
    return None


def _replay(
    automaton: ControlFlowAutomaton, lasso: Lasso
) -> Optional[ObligationFailure]:
    """Step-execute the lasso; an :class:`ObligationFailure` on the first
    divergence from the automaton semantics, else ``None``."""
    variables = list(automaton.variables)
    integers = automaton.integer_variables
    transitions = automaton.transitions

    def fail(case: str, state: Dict[str, Fraction]) -> ObligationFailure:
        return ObligationFailure(
            source=automaton.initial_location,
            target=lasso.cutpoint,
            case=case,
            witness={name: str(value) for name, value in state.items()},
        )

    missing = [v for v in variables if v not in lasso.initial]
    state = {v: Fraction(lasso.initial.get(v, 0)) for v in variables}
    if missing:
        return fail("replay: initial state missing %s" % sorted(missing), state)
    for v in integers:
        if state[v].denominator != 1:
            return fail("replay: initial value of %s not integral" % v, state)
    if not _holds(automaton.initial_condition, state):
        return fail("replay: initial condition violated", state)

    location = automaton.initial_location
    for position, step in enumerate(lasso.stem):
        if not 0 <= step.transition < len(transitions):
            return fail(
                "replay: stem step %d transition index out of range" % position,
                state,
            )
        transition = transitions[step.transition]
        if transition.source != location:
            return fail(
                "replay: stem step %d leaves %s, not %s"
                % (position, transition.source, location),
                state,
            )
        if not _holds(transition.guard, state):
            return fail(
                "replay: stem step %d guard not enabled" % position, state
            )
        new_state = dict(state)
        for v, expr in transition.updates.items():
            if expr is None:
                if v not in step.choices:
                    return fail(
                        "replay: stem step %d missing choice for %s"
                        % (position, v),
                        state,
                    )
                value = step.choices[v]
                if v in integers and value.denominator != 1:
                    return fail(
                        "replay: stem step %d non-integral choice for %s"
                        % (position, v),
                        state,
                    )
                new_state[v] = value
            else:
                new_state[v] = expr.evaluate(state)
        state = new_state
        location = transition.target
    if location != lasso.cutpoint:
        return fail(
            "replay: stem ends at %s, not at the cutpoint" % location, state
        )
    for row in lasso.rows:
        if not row.satisfied_by(state):
            return fail("replay: stem lands outside S (%s)" % (row,), state)

    for iteration in range(REPLAY_ITERATIONS):
        entry = dict(state)
        for position, step in enumerate(lasso.cycle):
            transition = transitions[step.transition]
            if transition.source != location:
                return fail(
                    "replay: cycle step %d leaves %s, not %s"
                    % (position, transition.source, location),
                    state,
                )
            if not _holds(transition.guard, state):
                return fail(
                    "replay: iteration %d cycle step %d guard not enabled"
                    % (iteration + 1, position),
                    state,
                )
            new_state = dict(state)
            for v, expr in transition.updates.items():
                if expr is None:
                    new_state[v] = step.choices[v].evaluate(entry)
                else:
                    new_state[v] = expr.evaluate(state)
            state = new_state
            location = transition.target
        for row in lasso.rows:
            if not row.satisfied_by(state):
                return fail(
                    "replay: iteration %d escapes S (%s)"
                    % (iteration + 1, row),
                    state,
                )
        for v in integers:
            if state[v].denominator != 1:
                return fail(
                    "replay: iteration %d leaves %s non-integral"
                    % (iteration + 1, v),
                    state,
                )
    return None


def check_recurrence(
    automaton: ControlFlowAutomaton,
    lasso: Lasso,
    row_budget: int = farkas.DEFAULT_ROW_BUDGET,
) -> CertificateVerdict:
    """Re-verify the nontermination witness *lasso* against *automaton*.

    Returns a :class:`~repro.checking.checker.CertificateVerdict` whose
    ``status`` is ``valid`` (closure Farkas-proved *and* replay passed),
    ``invalid`` (a refutable claim, with witnesses in ``failures``) or
    ``inconclusive`` (a budget or integrality limitation).
    """
    verdict = CertificateVerdict(
        status=CertificateVerdict.VALID,
        dimension=len(lasso.rows),
        blocks=len(lasso.cycle),
    )
    variables = set(automaton.variables)
    if lasso.cutpoint not in automaton.locations:
        verdict.status = CertificateVerdict.INVALID
        verdict.failures.append(
            ObligationFailure(
                source="*",
                target=lasso.cutpoint,
                case="cutpoint is not a location of the automaton",
            )
        )
        return verdict
    for row in lasso.rows:
        if not row.variables() <= variables:
            verdict.status = CertificateVerdict.INVALID
            verdict.failures.append(
                ObligationFailure(
                    source="*",
                    target=lasso.cutpoint,
                    case="recurrence row mentions non-program variables: %s"
                    % (row,),
                )
            )
            return verdict

    try:
        guard_rows, f_map = _rebuild_pass(automaton, lasso)
    except _StructureError as error:
        verdict.status = CertificateVerdict.INVALID
        verdict.failures.append(
            ObligationFailure(
                source="*", target=lasso.cutpoint, case=str(error)
            )
        )
        return verdict

    inconclusive = False
    note = _integrality_note(automaton, f_map)
    if note is not None:
        verdict.notes.append(note)
        inconclusive = True

    def is_integer(name: str) -> bool:
        return name in automaton.integer_variables

    base = farkas.tighten_integer_strict(list(lasso.rows), is_integer)
    images = [row.substitute(f_map) for row in lasso.rows]
    for label, obligation in [
        ("cycle guard not enabled on S", guard_rows),
        ("S not closed under the pass", images),
    ]:
        for row in obligation:
            if row.is_trivially_true():
                continue
            for branch in _negate_branches(row):
                verdict.obligations += 1
                system = base + farkas.tighten_integer_strict(
                    [branch], is_integer
                )
                try:
                    decision = farkas.decide_system(system, row_budget)
                except farkas.FarkasBudgetExceeded as error:
                    verdict.notes.append(str(error))
                    inconclusive = True
                    continue
                if isinstance(decision, farkas.Refutation):
                    verdict.refuted += 1
                    continue
                witness = decision
                if not witness.is_integral(
                    [name for name in witness.assignment if is_integer(name)]
                ):
                    inconclusive = True
                    verdict.notes.append(
                        "%s (%s) admits only a non-integral witness"
                        % (label, row)
                    )
                    continue
                verdict.failures.append(
                    ObligationFailure(
                        source=lasso.cutpoint,
                        target=lasso.cutpoint,
                        case="%s: %s" % (label, row),
                        witness=witness.to_dict(),
                    )
                )

    verdict.obligations += 1
    replay_failure = _replay(automaton, lasso)
    if replay_failure is None:
        verdict.refuted += 1
    else:
        verdict.failures.append(replay_failure)

    if verdict.failures:
        verdict.status = CertificateVerdict.INVALID
    elif inconclusive:
        verdict.status = CertificateVerdict.INCONCLUSIVE
    return verdict
