"""Affine expressions over named variables with rational coefficients."""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.linalg.rational import Rat, as_fraction
from repro.linalg.vector import Vector


class LinExpr:
    """An affine expression ``Σ coefficient(v) · v + constant``.

    Instances are immutable.  Arithmetic operators build new expressions;
    comparison operators build :class:`repro.linexpr.constraint.Constraint`
    atoms, so programs and transition relations can be written naturally::

        x, y = var("x"), var("y")
        guard = (x <= 10) & (y >= 0)
    """

    __slots__ = ("_terms", "_constant", "_hash")

    def __init__(
        self,
        terms: Mapping[str, Rat] | None = None,
        constant: Rat = 0,
    ):
        cleaned: Dict[str, Fraction] = {}
        for name, coefficient in (terms or {}).items():
            value = (
                coefficient
                if type(coefficient) is Fraction
                else as_fraction(coefficient)
            )
            if value != 0:
                cleaned[name] = value
        self._terms: Tuple[Tuple[str, Fraction], ...] = tuple(
            sorted(cleaned.items())
        )
        self._constant = (
            constant if type(constant) is Fraction else as_fraction(constant)
        )
        self._hash = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def variable(cls, name: str) -> "LinExpr":
        """The expression consisting of the single variable *name*."""
        return cls({name: 1})

    @classmethod
    def constant(cls, value: Rat) -> "LinExpr":
        """The constant expression *value*."""
        return cls({}, value)

    @classmethod
    def from_terms(
        cls, pairs: Iterable[Tuple[str, Rat]], constant: Rat = 0
    ) -> "LinExpr":
        """Build from (variable, coefficient) pairs, summing duplicates."""
        accumulated: Dict[str, Fraction] = {}
        for name, coefficient in pairs:
            accumulated[name] = accumulated.get(name, Fraction(0)) + as_fraction(
                coefficient
            )
        return cls(accumulated, constant)

    # -- inspection ---------------------------------------------------------

    @property
    def terms(self) -> Dict[str, Fraction]:
        """Mapping from variable name to (non-zero) coefficient."""
        return dict(self._terms)

    @property
    def constant_term(self) -> Fraction:
        return self._constant

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of *name* (zero if absent)."""
        for variable, value in self._terms:
            if variable == name:
                return value
        return Fraction(0)

    def variables(self) -> frozenset:
        """The set of variables with a non-zero coefficient."""
        return frozenset(name for name, _ in self._terms)

    def is_constant(self) -> bool:
        return not self._terms

    def coefficient_vector(self, ordering: Iterable[str]) -> Vector:
        """Coefficients laid out according to *ordering* (constant excluded)."""
        return Vector(self.coefficient(name) for name in ordering)

    # -- arithmetic ---------------------------------------------------------

    @staticmethod
    def _coerce(value: Union["LinExpr", Rat]) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        return LinExpr.constant(value)

    def __add__(self, other: Union["LinExpr", Rat]) -> "LinExpr":
        rhs = self._coerce(other)
        terms = dict(self._terms)
        for name, coefficient in rhs._terms:
            terms[name] = terms.get(name, Fraction(0)) + coefficient
        return LinExpr(terms, self._constant + rhs._constant)

    __radd__ = __add__

    def __sub__(self, other: Union["LinExpr", Rat]) -> "LinExpr":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Union["LinExpr", Rat]) -> "LinExpr":
        return self._coerce(other) + (-self)

    def __neg__(self) -> "LinExpr":
        return LinExpr(
            {name: -coefficient for name, coefficient in self._terms},
            -self._constant,
        )

    def __mul__(self, scalar: Rat) -> "LinExpr":
        factor = as_fraction(scalar)
        return LinExpr(
            {name: coefficient * factor for name, coefficient in self._terms},
            self._constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Rat) -> "LinExpr":
        factor = as_fraction(scalar)
        if factor == 0:
            raise ZeroDivisionError("division of a LinExpr by zero")
        return self * (Fraction(1) / factor)

    # -- substitution / renaming --------------------------------------------

    def substitute(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Replace each variable in *mapping* with the given expression."""
        result = LinExpr.constant(self._constant)
        for name, coefficient in self._terms:
            replacement = mapping.get(name)
            if replacement is None:
                result = result + LinExpr({name: coefficient})
            else:
                result = result + replacement * coefficient
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables according to *mapping* (missing names kept)."""
        return LinExpr.from_terms(
            [
                (mapping.get(name, name), coefficient)
                for name, coefficient in self._terms
            ],
            self._constant,
        )

    def evaluate(self, assignment: Mapping[str, Rat]) -> Fraction:
        """Value of the expression under a (total) variable assignment."""
        total = self._constant
        for name, coefficient in self._terms:
            if name not in assignment:
                raise KeyError("no value for variable %r" % name)
            total += coefficient * as_fraction(assignment[name])
        return total

    # -- comparisons build constraints --------------------------------------

    def __le__(self, other: Union["LinExpr", Rat]):
        from repro.linexpr.constraint import Constraint, Relation

        return Constraint(self - self._coerce(other), Relation.LE)

    def __ge__(self, other: Union["LinExpr", Rat]):
        from repro.linexpr.constraint import Constraint, Relation

        return Constraint(self._coerce(other) - self, Relation.LE)

    def __lt__(self, other: Union["LinExpr", Rat]):
        from repro.linexpr.constraint import Constraint, Relation

        return Constraint(self - self._coerce(other), Relation.LT)

    def __gt__(self, other: Union["LinExpr", Rat]):
        from repro.linexpr.constraint import Constraint, Relation

        return Constraint(self._coerce(other) - self, Relation.LT)

    def eq(self, other: Union["LinExpr", Rat]):
        """The equality constraint ``self = other``.

        ``==`` is kept for structural equality of expressions, so equations
        are written ``x.eq(y + 1)``.
        """
        from repro.linexpr.constraint import Constraint, Relation

        return Constraint(self - self._coerce(other), Relation.EQ)

    # -- equality / hashing / printing --------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._terms == other._terms and self._constant == other._constant

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = self._hash = hash((self._terms, self._constant))
        return cached

    def __repr__(self) -> str:
        return "LinExpr(%s)" % str(self)

    def __str__(self) -> str:
        pieces = []
        for name, coefficient in self._terms:
            if coefficient == 1:
                pieces.append("+ %s" % name)
            elif coefficient == -1:
                pieces.append("- %s" % name)
            elif coefficient < 0:
                pieces.append("- %s*%s" % (-coefficient, name))
            else:
                pieces.append("+ %s*%s" % (coefficient, name))
        if self._constant != 0 or not pieces:
            if self._constant < 0:
                pieces.append("- %s" % (-self._constant))
            else:
                pieces.append("+ %s" % self._constant)
        text = " ".join(pieces)
        if text.startswith("+ "):
            text = text[2:]
        return text


def var(name: str) -> LinExpr:
    """Shorthand for :meth:`LinExpr.variable`."""
    return LinExpr.variable(name)


def const(value: Rat) -> LinExpr:
    """Shorthand for :meth:`LinExpr.constant`."""
    return LinExpr.constant(value)
