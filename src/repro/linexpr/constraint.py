"""Atomic linear constraints.

A :class:`Constraint` is ``expr ⋈ 0`` with ``⋈`` one of ``≤``, ``<``, ``=``.
Comparisons of :class:`~repro.linexpr.expr.LinExpr` objects already normalise
``≥`` and ``>`` to this form, so the rest of the library only ever sees the
three relations.
"""

from __future__ import annotations

import enum
import weakref
from fractions import Fraction
from typing import Mapping, Tuple

from repro.linalg.rational import Rat, as_fraction, integer_normalize
from repro.linexpr.expr import LinExpr


class Relation(enum.Enum):
    """Comparison against zero."""

    LE = "<="
    LT = "<"
    EQ = "="

    def is_strict(self) -> bool:
        return self is Relation.LT


class Constraint:
    """The atomic constraint ``expr ⋈ 0``.

    :meth:`normalized` returns the *interned* canonical form: one shared
    instance per (primitive-integer expression, relation) pair, cached
    per object.  The same constraint reaching the pipeline through
    different routes (frontend guards, invariant rows, FM combinations,
    checker obligations) therefore normalises to the identical object,
    making post-normalisation hashing and equality effectively O(1)
    (identity plus a cached hash) instead of a structural walk.
    """

    __slots__ = ("_expr", "_relation", "_canonical", "_hash", "__weakref__")

    #: Interning table for canonical forms; weak values keep it from
    #: pinning constraints that nothing references any more.
    _interned: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __init__(self, expr: LinExpr, relation: Relation):
        if not isinstance(expr, LinExpr):
            raise TypeError("Constraint expects a LinExpr")
        self._expr = expr
        self._relation = relation
        self._canonical = None
        self._hash = None

    # -- accessors ----------------------------------------------------------

    @property
    def expr(self) -> LinExpr:
        """The left-hand side, compared against zero."""
        return self._expr

    @property
    def relation(self) -> Relation:
        return self._relation

    def variables(self) -> frozenset:
        return self._expr.variables()

    def is_strict(self) -> bool:
        return self._relation.is_strict()

    def is_equality(self) -> bool:
        return self._relation is Relation.EQ

    def is_trivially_true(self) -> bool:
        """True when the constraint holds regardless of the variables."""
        if not self._expr.is_constant():
            return False
        value = self._expr.constant_term
        if self._relation is Relation.LE:
            return value <= 0
        if self._relation is Relation.LT:
            return value < 0
        return value == 0

    def is_trivially_false(self) -> bool:
        """True when the constraint is unsatisfiable regardless of variables."""
        return self._expr.is_constant() and not self.is_trivially_true()

    # -- transformations -----------------------------------------------------

    def negate(self) -> "Constraint":
        """The negation; equalities raise (callers split them explicitly)."""
        if self._relation is Relation.LE:
            return Constraint(-self._expr, Relation.LT)
        if self._relation is Relation.LT:
            return Constraint(-self._expr, Relation.LE)
        raise ValueError(
            "negating an equality yields a disjunction; "
            "split it with Or(lhs < rhs, lhs > rhs) instead"
        )

    def substitute(self, mapping: Mapping[str, LinExpr]) -> "Constraint":
        return Constraint(self._expr.substitute(mapping), self._relation)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self._expr.rename(mapping), self._relation)

    def weaken(self) -> "Constraint":
        """The non-strict relaxation (``<`` becomes ``≤``)."""
        if self._relation is Relation.LT:
            return Constraint(self._expr, Relation.LE)
        return self

    def tighten_for_integers(self) -> "Constraint":
        """Turn ``e < 0`` into ``e ≤ -1`` when ``e`` has integer coefficients.

        This is sound when every variable of the constraint ranges over the
        integers; it is how guards such as ``i > 0`` become the closed form
        ``i ≥ 1`` used throughout the paper's examples.
        """
        if self._relation is not Relation.LT:
            return self
        coefficients = list(self._expr.terms.values()) + [
            self._expr.constant_term
        ]
        if any(value.denominator != 1 for value in coefficients):
            return self
        return Constraint(self._expr + 1, Relation.LE)

    def normalized(self) -> "Constraint":
        """The interned canonical form: primitive integer coefficients,
        direction preserved, one shared instance per distinct constraint."""
        canonical = self._canonical
        if canonical is not None:
            return canonical
        names = sorted(self._expr.variables())
        coefficients = [self._expr.coefficient(name) for name in names]
        coefficients.append(self._expr.constant_term)
        scaled = integer_normalize(coefficients)
        expr = LinExpr(dict(zip(names, scaled[:-1])), scaled[-1])
        key = (expr._terms, expr._constant, self._relation)
        canonical = Constraint._interned.get(key)
        if canonical is None:
            if expr == self._expr:
                canonical = self  # already canonical: intern this instance
            else:
                canonical = Constraint(expr, self._relation)
            canonical._canonical = canonical
            Constraint._interned[key] = canonical
        self._canonical = canonical
        return canonical

    # -- evaluation ----------------------------------------------------------

    def satisfied_by(self, assignment: Mapping[str, Rat]) -> bool:
        """Whether the constraint holds under *assignment*."""
        value = self._expr.evaluate(
            {name: as_fraction(v) for name, v in assignment.items()}
        )
        if self._relation is Relation.LE:
            return value <= 0
        if self._relation is Relation.LT:
            return value < 0
        return value == 0

    # -- formula sugar ---------------------------------------------------------

    def __and__(self, other):
        from repro.linexpr.formula import conjunction

        return conjunction([self, other])

    def __or__(self, other):
        from repro.linexpr.formula import disjunction

        return disjunction([self, other])

    def __invert__(self):
        from repro.linexpr.transform import negate_constraint

        return negate_constraint(self)

    # -- misc ----------------------------------------------------------------

    def homogeneous_row(self, ordering: Tuple[str, ...]) -> Tuple[Fraction, ...]:
        """Coefficients ``(c_1, …, c_n, c_0)`` in the order given."""
        return tuple(
            [self._expr.coefficient(name) for name in ordering]
            + [self._expr.constant_term]
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Constraint):
            return NotImplemented
        return self._expr == other._expr and self._relation == other._relation

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = self._hash = hash((self._expr, self._relation))
        return cached

    def __repr__(self) -> str:
        return "Constraint(%s %s 0)" % (self._expr, self._relation.value)

    def __str__(self) -> str:
        return "%s %s 0" % (self._expr, self._relation.value)
