"""Quantifier- and disjunction-capable formulas over linear constraints.

The paper's transition relations are "large-block" formulas: conjunctions
and disjunctions of linear atoms, possibly with existentially quantified
auxiliary variables, and *without* an eager expansion into disjunctive
normal form.  This module provides exactly that abstract syntax.

Formulas form a DAG: sub-formulas may be shared between parents.  The
Tseitin conversion in :mod:`repro.smt.cnf` caches on object identity, so a
shared sub-formula is encoded once — this is what keeps the large-block
encoding linear in the size of the program.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

from repro.linexpr.constraint import Constraint

FormulaLike = Union["Formula", Constraint, bool]


class Formula:
    """Base class of all formula nodes."""

    __slots__ = ()

    def __and__(self, other: FormulaLike) -> "Formula":
        return conjunction([self, other])

    def __rand__(self, other: FormulaLike) -> "Formula":
        return conjunction([other, self])

    def __or__(self, other: FormulaLike) -> "Formula":
        return disjunction([self, other])

    def __ror__(self, other: FormulaLike) -> "Formula":
        return disjunction([other, self])

    def __invert__(self) -> "Formula":
        return Not(self)

    def children(self) -> Tuple["Formula", ...]:
        """Immediate sub-formulas (empty for leaves)."""
        return ()


class _Constant(Formula):
    """The constants TRUE and FALSE."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = _Constant(True)
FALSE = _Constant(False)


class Atom(Formula):
    """A linear constraint used as a formula leaf."""

    __slots__ = ("constraint",)

    def __init__(self, constraint: Constraint):
        if not isinstance(constraint, Constraint):
            raise TypeError("Atom wraps a Constraint")
        self.constraint = constraint

    def __repr__(self) -> str:
        return "Atom(%s)" % self.constraint


class And(Formula):
    """Conjunction of sub-formulas (empty conjunction is TRUE)."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[FormulaLike]):
        self.operands: Tuple[Formula, ...] = tuple(
            atom(op) for op in operands
        )

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def __repr__(self) -> str:
        return "And(%d operands)" % len(self.operands)


class Or(Formula):
    """Disjunction of sub-formulas (empty disjunction is FALSE)."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[FormulaLike]):
        self.operands: Tuple[Formula, ...] = tuple(
            atom(op) for op in operands
        )

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def __repr__(self) -> str:
        return "Or(%d operands)" % len(self.operands)


class Not(Formula):
    """Negation.

    The paper's input language excludes negation, but the synthesiser itself
    introduces negated candidate conditions (``λ·u ≤ 0`` is the negation of
    strict decrease), so the node exists and is pushed to the leaves by
    :func:`repro.linexpr.transform.to_nnf`.
    """

    __slots__ = ("operand",)

    def __init__(self, operand: FormulaLike):
        self.operand = atom(operand)

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return "Not(%r)" % (self.operand,)


class Exists(Formula):
    """Existential quantification over a block of variables."""

    __slots__ = ("variables", "body")

    def __init__(self, variables: Sequence[str], body: FormulaLike):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.body = atom(body)

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return "Exists(%s, %r)" % (list(self.variables), self.body)


def atom(value: FormulaLike) -> Formula:
    """Coerce a constraint or boolean into a formula node."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, Constraint):
        return Atom(value)
    if isinstance(value, bool):
        return TRUE if value else FALSE
    raise TypeError("cannot interpret %r as a formula" % (value,))


def conjunction(operands: Iterable[FormulaLike]) -> Formula:
    """N-ary conjunction with the obvious simplifications."""
    flattened = []
    for operand in operands:
        node = atom(operand)
        if node is TRUE:
            continue
        if node is FALSE:
            return FALSE
        if isinstance(node, And):
            flattened.extend(node.operands)
        else:
            flattened.append(node)
    if not flattened:
        return TRUE
    if len(flattened) == 1:
        return flattened[0]
    return And(flattened)


def disjunction(operands: Iterable[FormulaLike]) -> Formula:
    """N-ary disjunction with the obvious simplifications."""
    flattened = []
    for operand in operands:
        node = atom(operand)
        if node is FALSE:
            continue
        if node is TRUE:
            return TRUE
        if isinstance(node, Or):
            flattened.extend(node.operands)
        else:
            flattened.append(node)
    if not flattened:
        return FALSE
    if len(flattened) == 1:
        return flattened[0]
    return Or(flattened)
