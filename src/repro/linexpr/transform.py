"""Structural transformations of formulas.

These are deliberately simple syntactic operations: negation normal form,
renaming, substitution, free-variable collection and — only for the eager
baseline algorithms — expansion into disjunctive normal form.  The core
Termite algorithm never calls :func:`dnf_conjunctions`; avoiding that
exponential expansion is the whole point of the paper.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import (
    And,
    Atom,
    Exists,
    FALSE,
    Formula,
    Not,
    Or,
    TRUE,
    conjunction,
    disjunction,
)

PRIME_SUFFIX = "'"


def prime_suffix(name: str) -> str:
    """The primed (post-state) version of a variable name."""
    return name + PRIME_SUFFIX


def negate_constraint(constraint: Constraint) -> Formula:
    """The negation of an atomic constraint as a formula.

    Inequalities negate to the opposite strict/non-strict inequality; an
    equality negates to the disjunction of the two strict inequalities.
    """
    if constraint.relation is Relation.EQ:
        return disjunction(
            [
                Constraint(constraint.expr, Relation.LT),
                Constraint(-constraint.expr, Relation.LT),
            ]
        )
    return Atom(constraint.negate())


def to_nnf(formula: Formula, negated: bool = False) -> Formula:
    """Negation normal form: ``Not`` pushed onto (and absorbed by) atoms."""
    if formula is TRUE:
        return FALSE if negated else TRUE
    if formula is FALSE:
        return TRUE if negated else FALSE
    if isinstance(formula, Atom):
        if negated:
            return negate_constraint(formula.constraint)
        return formula
    if isinstance(formula, Not):
        return to_nnf(formula.operand, not negated)
    if isinstance(formula, And):
        parts = [to_nnf(op, negated) for op in formula.operands]
        return disjunction(parts) if negated else conjunction(parts)
    if isinstance(formula, Or):
        parts = [to_nnf(op, negated) for op in formula.operands]
        return conjunction(parts) if negated else disjunction(parts)
    if isinstance(formula, Exists):
        if negated:
            raise ValueError(
                "cannot negate an existential quantifier in this fragment"
            )
        return Exists(formula.variables, to_nnf(formula.body))
    raise TypeError("unknown formula node %r" % (formula,))


def rename_formula(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename free variables of *formula* according to *mapping*.

    Bound (existentially quantified) variables shadow the renaming.
    """
    if formula is TRUE or formula is FALSE:
        return formula
    if isinstance(formula, Atom):
        return Atom(formula.constraint.rename(mapping))
    if isinstance(formula, Not):
        return Not(rename_formula(formula.operand, mapping))
    if isinstance(formula, And):
        return conjunction(
            rename_formula(op, mapping) for op in formula.operands
        )
    if isinstance(formula, Or):
        return disjunction(
            rename_formula(op, mapping) for op in formula.operands
        )
    if isinstance(formula, Exists):
        inner = {
            name: target
            for name, target in mapping.items()
            if name not in formula.variables
        }
        return Exists(formula.variables, rename_formula(formula.body, inner))
    raise TypeError("unknown formula node %r" % (formula,))


def substitute_formula(
    formula: Formula, mapping: Mapping[str, LinExpr]
) -> Formula:
    """Substitute expressions for free variables."""
    if formula is TRUE or formula is FALSE:
        return formula
    if isinstance(formula, Atom):
        return Atom(formula.constraint.substitute(mapping))
    if isinstance(formula, Not):
        return Not(substitute_formula(formula.operand, mapping))
    if isinstance(formula, And):
        return conjunction(
            substitute_formula(op, mapping) for op in formula.operands
        )
    if isinstance(formula, Or):
        return disjunction(
            substitute_formula(op, mapping) for op in formula.operands
        )
    if isinstance(formula, Exists):
        inner = {
            name: target
            for name, target in mapping.items()
            if name not in formula.variables
        }
        return Exists(
            formula.variables, substitute_formula(formula.body, inner)
        )
    raise TypeError("unknown formula node %r" % (formula,))


def formula_variables(formula: Formula) -> FrozenSet[str]:
    """The free variables of *formula*."""
    if formula is TRUE or formula is FALSE:
        return frozenset()
    if isinstance(formula, Atom):
        return formula.constraint.variables()
    if isinstance(formula, (Not,)):
        return formula_variables(formula.operand)
    if isinstance(formula, (And, Or)):
        result: Set[str] = set()
        for operand in formula.operands:
            result |= formula_variables(operand)
        return frozenset(result)
    if isinstance(formula, Exists):
        return formula_variables(formula.body) - frozenset(formula.variables)
    raise TypeError("unknown formula node %r" % (formula,))


def formula_atoms(formula: Formula) -> List[Constraint]:
    """All atomic constraints occurring in *formula* (duplicates removed)."""
    seen: Dict[Constraint, None] = {}

    def walk(node: Formula) -> None:
        if isinstance(node, Atom):
            seen.setdefault(node.constraint)
            return
        for child in node.children():
            walk(child)

    walk(formula)
    return list(seen)


def formula_size(formula: Formula) -> int:
    """Number of nodes in the formula DAG (shared nodes counted once)."""
    visited: Set[int] = set()

    def walk(node: Formula) -> int:
        if id(node) in visited:
            return 0
        visited.add(id(node))
        return 1 + sum(walk(child) for child in node.children())

    return walk(formula)


def tighten_strict_atoms(formula: Formula, integer_variables) -> Formula:
    """Replace ``e < 0`` atoms by ``e ≤ -1`` where all variables are integers.

    Sound and complete over integer-valued variables; used by the front-end
    so that rational reasoning downstream (the default mode of the
    synthesiser) does not see spurious fractional boundary points such as
    ``0 < c < 1``.
    """
    integer_variables = set(integer_variables)
    if formula is TRUE or formula is FALSE:
        return formula
    if isinstance(formula, Atom):
        constraint = formula.constraint
        if constraint.is_strict() and constraint.variables() <= integer_variables:
            return Atom(constraint.tighten_for_integers())
        return formula
    if isinstance(formula, Not):
        return Not(tighten_strict_atoms(formula.operand, integer_variables))
    if isinstance(formula, And):
        return conjunction(
            tighten_strict_atoms(op, integer_variables) for op in formula.operands
        )
    if isinstance(formula, Or):
        return disjunction(
            tighten_strict_atoms(op, integer_variables) for op in formula.operands
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variables,
            tighten_strict_atoms(formula.body, integer_variables),
        )
    raise TypeError("unknown formula node %r" % (formula,))


# ---------------------------------------------------------------------------
# DNF expansion (used by the eager baselines only)
# ---------------------------------------------------------------------------


_fresh_counter = itertools.count()


def _freshen(variables: Sequence[str]) -> Dict[str, str]:
    index = next(_fresh_counter)
    return {name: "%s!dnf%d" % (name, index) for name in variables}


def dnf_conjunctions(formula: Formula) -> List[List[Constraint]]:
    """Expand *formula* into a list of conjunctions of constraints.

    Existential quantifiers are handled by renaming the bound variables to
    fresh names, which leaves them implicitly existentially quantified in
    each disjunct (the eager baselines then project them away with
    Fourier–Motzkin).  The result can be exponentially larger than the
    input — this is exactly the blow-up the lazy algorithm avoids.
    """
    formula = to_nnf(formula)

    def expand(node: Formula) -> List[List[Constraint]]:
        if node is TRUE:
            return [[]]
        if node is FALSE:
            return []
        if isinstance(node, Atom):
            if node.constraint.is_trivially_false():
                return []
            if node.constraint.is_trivially_true():
                return [[]]
            return [[node.constraint]]
        if isinstance(node, Or):
            result: List[List[Constraint]] = []
            for operand in node.operands:
                result.extend(expand(operand))
            return result
        if isinstance(node, And):
            partial: List[List[Constraint]] = [[]]
            for operand in node.operands:
                pieces = expand(operand)
                partial = [
                    left + right for left in partial for right in pieces
                ]
                if not partial:
                    return []
            return partial
        if isinstance(node, Exists):
            renaming = _freshen(node.variables)
            return expand(rename_formula(node.body, renaming))
        if isinstance(node, Not):
            raise ValueError("formula should be in NNF before DNF expansion")
        raise TypeError("unknown formula node %r" % (node,))

    return expand(formula)
