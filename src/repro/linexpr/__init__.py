"""Linear expressions, constraints and first-order formulas over them.

This is the small logic the whole library speaks:

* :class:`LinExpr` — affine expression ``Σ c_i · x_i + c0`` over named
  variables with exact rational coefficients.
* :class:`Constraint` — atomic constraint ``expr ⋈ 0`` with
  ``⋈ ∈ {≤, <, =}`` (other comparisons are normalised on construction).
* :mod:`repro.linexpr.formula` — formulas built from atoms with
  ``And`` / ``Or`` / ``Not`` / ``Exists`` plus the constants TRUE/FALSE.
  The transition relations of the paper (large-block encodings) live here.
"""

from repro.linexpr.expr import LinExpr, var, const
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.formula import (
    And,
    Atom,
    Exists,
    FALSE,
    Formula,
    Not,
    Or,
    TRUE,
    atom,
    conjunction,
    disjunction,
)
from repro.linexpr.transform import (
    dnf_conjunctions,
    formula_atoms,
    formula_variables,
    negate_constraint,
    prime_suffix,
    rename_formula,
    substitute_formula,
    to_nnf,
)

__all__ = [
    "LinExpr",
    "var",
    "const",
    "Constraint",
    "Relation",
    "Formula",
    "Atom",
    "And",
    "Or",
    "Not",
    "Exists",
    "TRUE",
    "FALSE",
    "atom",
    "conjunction",
    "disjunction",
    "to_nnf",
    "negate_constraint",
    "rename_formula",
    "substitute_formula",
    "formula_variables",
    "formula_atoms",
    "dnf_conjunctions",
    "prime_suffix",
]
