"""Lasso witnesses: the portable evidence for a NONTERMINATING verdict.

A :class:`Lasso` names everything an independent checker needs to
re-establish nontermination without trusting the engine:

* ``cutpoint`` — the location the infinite execution revisits;
* ``rows`` — the recurrence set ``S`` as a conjunction of linear
  constraints over the *program* variables at the cutpoint;
* ``initial``/``stem`` — a concrete initial state and the transition
  path (with concrete values for every havoc) that drives it into ``S``;
* ``cycle`` — one pass around a cycle back to the cutpoint.  Each step
  names its transition, which DNF conjunct of the guard the engine
  committed to, and an affine *choice* ``sigma`` for every havoc slot,
  expressed over the cycle-**entry** state.

The cycle is deliberately symbolic: closure (``x in S`` implies the pass
is enabled and lands back in ``S``) is a universally quantified claim,
re-proved by the checker with Farkas certificates, while the stem and a
few unrolled cycle iterations are replayed concretely.

Serialisation follows :func:`repro.api.result.ranking_to_dict`: every
rational is a ``str(Fraction)`` so the JSON round-trip is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr


def _expr_to_dict(expr: LinExpr) -> dict:
    return {
        "terms": {name: str(coeff) for name, coeff in sorted(expr.terms.items())},
        "constant": str(expr.constant_term),
    }


def _expr_from_dict(data: Mapping) -> LinExpr:
    return LinExpr.from_terms(
        [(name, Fraction(text)) for name, text in data["terms"].items()],
        Fraction(data["constant"]),
    )


def constraint_to_dict(constraint: Constraint) -> dict:
    document = _expr_to_dict(constraint.expr)
    document["relation"] = constraint.relation.value
    return document


def constraint_from_dict(data: Mapping) -> Constraint:
    return Constraint(_expr_from_dict(data), Relation(data["relation"]))


@dataclass
class StemStep:
    """One concrete transition along the stem.

    ``choices`` gives the value written by every havoc update of the
    transition, keyed by the havocked program variable.
    """

    transition: int
    choices: Dict[str, Fraction] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "transition": self.transition,
            "choices": {name: str(value) for name, value in sorted(self.choices.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StemStep":
        return cls(
            transition=int(data["transition"]),
            choices={name: Fraction(text) for name, text in data.get("choices", {}).items()},
        )


@dataclass
class CycleStep:
    """One symbolic transition around the cycle.

    ``conjunct`` indexes into the DNF expansion of the transition's
    guard (``repro.linexpr.transform.dnf_conjunctions`` is deterministic,
    so the index is a stable reference).  ``choices`` maps each havocked
    variable to an affine expression over the cycle-entry state.
    """

    transition: int
    conjunct: int = 0
    choices: Dict[str, LinExpr] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "transition": self.transition,
            "conjunct": self.conjunct,
            "choices": {
                name: _expr_to_dict(expr) for name, expr in sorted(self.choices.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CycleStep":
        return cls(
            transition=int(data["transition"]),
            conjunct=int(data.get("conjunct", 0)),
            choices={
                name: _expr_from_dict(expr)
                for name, expr in data.get("choices", {}).items()
            },
        )


@dataclass
class Lasso:
    """A stem + cycle nontermination witness anchored at ``cutpoint``."""

    cutpoint: str
    rows: List[Constraint] = field(default_factory=list)
    initial: Dict[str, Fraction] = field(default_factory=dict)
    stem: List[StemStep] = field(default_factory=list)
    cycle: List[CycleStep] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "cutpoint": self.cutpoint,
            "rows": [constraint_to_dict(row) for row in self.rows],
            "initial": {name: str(value) for name, value in sorted(self.initial.items())},
            "stem": [step.to_dict() for step in self.stem],
            "cycle": [step.to_dict() for step in self.cycle],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Lasso":
        return cls(
            cutpoint=data["cutpoint"],
            rows=[constraint_from_dict(row) for row in data.get("rows", [])],
            initial={
                name: Fraction(text) for name, text in data.get("initial", {}).items()
            },
            stem=[StemStep.from_dict(step) for step in data.get("stem", [])],
            cycle=[CycleStep.from_dict(step) for step in data.get("cycle", [])],
        )

    def describe(self) -> str:
        return (
            "recurrence set of %d row%s at %s (stem %d step%s, cycle %d step%s)"
            % (
                len(self.rows),
                "" if len(self.rows) == 1 else "s",
                self.cutpoint,
                len(self.stem),
                "" if len(self.stem) == 1 else "s",
                len(self.cycle),
                "" if len(self.cycle) == 1 else "s",
            )
        )
