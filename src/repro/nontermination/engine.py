"""CEGIS synthesis of recurrence sets (the nontermination engine).

A program is nonterminating iff some *recurrence set* exists (Gupta et
al., POPL 2008): a set ``S`` of states at a cutpoint that is non-empty,
reachable from an initial state, and from which every state can take one
pass around a cycle and land back in ``S``.  This engine searches for a
polyhedral ``S`` with the same counterexample-guided shape as the
ranking-function loop in :mod:`repro.synthesis`:

1. **Candidate** — pick a cutpoint, a simple cycle through it, one DNF
   conjunct of each guard and an affine resolution ``sigma`` for every
   havoc (:func:`~repro.nontermination.templates.sigma_candidates`).
   Forward substitution turns the pass into an affine map ``F`` and the
   pulled-back guards into the initial candidate ``S``.
2. **Verify** — look for an *escaping* state: a model of
   ``S and not r(F(x))`` for some row ``r`` of ``S``, decided exactly
   over the integers by :func:`repro.smt.theory.check_conjunction`.
3. **Refine** — the escaping state is the counterexample.  First try to
   cut it off with a syntactic pool row
   (:func:`~repro.nontermination.templates.candidate_pool`); only then
   fall back to the weakest-precondition row ``r(F(x))`` itself.  An
   infeasible candidate or a non-progressing refinement discards the
   candidate; a closed one proceeds to the stem search.
4. **Stem** — a bounded symbolic execution from the initial location to
   the cutpoint (fresh variables for havocs) conjoined with ``S`` yields
   a concrete initial state and concrete havoc choices.

Success is packaged as a :class:`~repro.nontermination.witness.Lasso`
and **self-replayed** before being returned, so an engine bug fails the
search rather than emitting a bogus witness; the independent replay
lives in :func:`repro.checking.recurrence.check_recurrence`, which this
package never imports.

Everything here is *sound by construction*: nondeterminism is angelic
for nontermination, closure is decided exactly, and the final verdict
additionally rests on the checker's Farkas re-proof.  The engine is
deliberately incomplete — budgets bound cycles, refinements and stems.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import And, Atom, Formula, Not, Or, _Constant
from repro.linexpr.transform import dnf_conjunctions
from repro.nontermination.templates import (
    candidate_pool,
    negation_branches,
    sigma_candidates,
)
from repro.nontermination.witness import CycleStep, Lasso, StemStep
from repro.program.automaton import ControlFlowAutomaton
from repro.program.cutset import compute_cutset
from repro.program.transition import Transition
from repro.smt.theory import check_conjunction
from repro.synthesis.engine import CegisEvent, CegisObserver, SynthesisCancelled

#: Default cap on full candidates (cycle x conjuncts x sigma) examined.
DEFAULT_BUDGET = 64
#: Longest simple cycle (in transitions) considered at a cutpoint.
MAX_CYCLE_LENGTH = 8
#: Simple cycles enumerated per cutpoint.
MAX_CYCLE_PATHS = 16
#: Refinement iterations per candidate before giving it up.
MAX_REFINEMENTS = 24
#: Longest stem path (in transitions) from the initial location.
MAX_STEM_LENGTH = 12
#: Stem paths enumerated per cutpoint.
MAX_STEM_PATHS = 64
#: Guard-conjunct combinations solved per stem path.
MAX_STEM_CANDIDATES = 24
#: Concrete cycle iterations unrolled by the engine's self-replay.
REPLAY_ITERATIONS = 2


def evaluate_formula(formula: Formula, state: Dict[str, Fraction]) -> bool:
    """Concrete truth of *formula* under a total assignment *state*.

    ``Exists`` is rejected (returns ``False``): the structured front end
    never emits it in guards or initial conditions, and a conservative
    answer keeps replay sound.
    """
    if isinstance(formula, _Constant):
        return formula.value
    if isinstance(formula, Atom):
        return formula.constraint.satisfied_by(state)
    if isinstance(formula, And):
        return all(evaluate_formula(op, state) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate_formula(op, state) for op in formula.operands)
    if isinstance(formula, Not):
        return not evaluate_formula(formula.operand, state)
    return False


@dataclass
class NontermStatistics:
    """Counters of one recurrence-set search."""

    candidates: int = 0
    refinements: int = 0
    escapes: int = 0
    stems: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "candidates": self.candidates,
            "refinements": self.refinements,
            "escapes": self.escapes,
            "stems": self.stems,
        }


@dataclass
class NontermResult:
    """Outcome of the recurrence-set search."""

    success: bool
    lasso: Optional[Lasso] = None
    iterations: int = 0
    message: str = ""
    statistics: NontermStatistics = field(default_factory=NontermStatistics)


class RecurrenceSynthesizer:
    """One recurrence-set search over a :class:`ControlFlowAutomaton`."""

    def __init__(
        self,
        automaton: ControlFlowAutomaton,
        budget: int = DEFAULT_BUDGET,
        observers: Sequence[CegisObserver] = (),
        should_stop: Optional[Callable[[], bool]] = None,
        kernel: str = "exact",
    ):
        self.automaton = automaton
        self.budget = max(1, int(budget))
        self.observers = tuple(obs for obs in observers if obs is not None)
        self.should_stop = should_stop
        self.kernel = kernel
        self.statistics = NontermStatistics()
        self._variables = list(automaton.variables)
        self._integer = set(automaton.integer_variables)
        self._pool = candidate_pool(automaton)
        self._conjunct_cache: Dict[int, List[List[Constraint]]] = {}
        self._transition_index = {
            id(transition): index
            for index, transition in enumerate(automaton.transitions)
        }

    # -- plumbing ----------------------------------------------------------------

    def _emit(self, kind: str, **payload) -> None:
        if not self.observers:
            return
        event = CegisEvent(kind, 0, self.statistics.candidates, payload)
        for observer in self.observers:
            observer(event)

    def _check_stop(self) -> None:
        if self.should_stop is not None and self.should_stop():
            raise SynthesisCancelled("nontermination search cancelled")

    def _conjunctions(self, transition: Transition) -> List[List[Constraint]]:
        """The raw DNF conjuncts of a guard, cached per transition.

        The list is *never* filtered: a :class:`CycleStep` records its
        conjunct by index, and the checker rebuilds the same list from
        the same deterministic expansion.
        """
        key = id(transition)
        cached = self._conjunct_cache.get(key)
        if cached is None:
            cached = dnf_conjunctions(transition.guard)
            self._conjunct_cache[key] = cached
        return cached

    # -- the search --------------------------------------------------------------

    def synthesize(self) -> NontermResult:
        if not self.automaton.has_cycle():
            return self._finish(False, None, "control-flow graph is acyclic")
        cutpoints = [
            location
            for location in compute_cutset(self.automaton)
            if location in self.automaton.reachable_locations()
        ]
        self._emit("nonterm_start", cutpoints=list(cutpoints))
        exhausted = False
        for cutpoint in cutpoints:
            for path in self._cycle_paths(cutpoint):
                for rows, f_map, steps in self._cycle_candidates(path):
                    self._check_stop()
                    if self.statistics.candidates >= self.budget:
                        exhausted = True
                        break
                    self.statistics.candidates += 1
                    self._emit(
                        "nonterm_candidate", cutpoint=cutpoint, length=len(path)
                    )
                    closed = self._refine(rows, f_map)
                    if closed is None:
                        continue
                    self._emit(
                        "nonterm_closed", cutpoint=cutpoint, rows=len(closed)
                    )
                    stem = self._find_stem(cutpoint, closed)
                    if stem is None:
                        continue
                    initial, stem_steps = stem
                    lasso = Lasso(
                        cutpoint=cutpoint,
                        rows=list(closed),
                        initial=initial,
                        stem=stem_steps,
                        cycle=list(steps),
                    )
                    if not self._replays(lasso):
                        continue
                    self._emit(
                        "nonterm_success", cutpoint=cutpoint, rows=len(closed)
                    )
                    return self._finish(True, lasso, "recurrence set found")
                if exhausted:
                    break
            if exhausted:
                break
        message = (
            "candidate budget exhausted"
            if exhausted
            else "no recurrence set found within budget"
        )
        return self._finish(False, None, message)

    def _finish(
        self, success: bool, lasso: Optional[Lasso], message: str
    ) -> NontermResult:
        self._emit("nonterm_end", success=success, message=message)
        return NontermResult(
            success=success,
            lasso=lasso,
            iterations=self.statistics.refinements,
            message=message,
            statistics=self.statistics,
        )

    # -- cycle enumeration -------------------------------------------------------

    def _cycle_paths(self, cutpoint: str) -> List[List[Transition]]:
        """Simple cycles through *cutpoint*, shortest first."""
        results: List[List[Transition]] = []

        def visit(location: str, path: List[Transition], visited) -> None:
            if len(results) >= MAX_CYCLE_PATHS:
                return
            for transition in self.automaton.outgoing(location):
                if transition.target == cutpoint:
                    results.append(path + [transition])
                    if len(results) >= MAX_CYCLE_PATHS:
                        return
                elif (
                    transition.target not in visited
                    and len(path) + 1 < MAX_CYCLE_LENGTH
                ):
                    visit(
                        transition.target,
                        path + [transition],
                        visited | {transition.target},
                    )

        visit(cutpoint, [], {cutpoint})
        results.sort(key=len)
        return results

    def _cycle_candidates(
        self, path: List[Transition]
    ) -> Iterator[Tuple[List[Constraint], Dict[str, LinExpr], List[CycleStep]]]:
        """All (guard rows, affine map, steps) instantiations of *path*.

        The symbolic state starts as the identity over the program
        variables; each step pulls its chosen guard conjunct back to the
        cycle-entry state and substitutes either the update expression or
        the chosen ``sigma`` for every variable, so the final state *is*
        the affine map ``F`` of the whole pass.
        """
        identity = {v: LinExpr.variable(v) for v in self._variables}

        def walk(index, state, rows, steps):
            if index == len(path):
                yield list(rows), dict(state), list(steps)
                return
            transition = path[index]
            t_index = self._transition_index[id(transition)]
            for c_index, conjunct in enumerate(self._conjunctions(transition)):
                new_rows = list(rows)
                feasible = True
                for row in conjunct:
                    pulled = row.substitute(state)
                    if pulled.is_trivially_false():
                        feasible = False
                        break
                    if pulled.is_trivially_true():
                        continue
                    new_rows.append(pulled)
                if not feasible:
                    continue
                havocs = sorted(
                    v for v, expr in transition.updates.items() if expr is None
                )
                menus = [sigma_candidates(v, state[v]) for v in havocs]
                for combo in itertools.product(*menus):
                    choices = dict(zip(havocs, combo))
                    new_state = {}
                    for v in self._variables:
                        if v in transition.updates:
                            expr = transition.updates[v]
                            new_state[v] = (
                                choices[v]
                                if expr is None
                                else expr.substitute(state)
                            )
                        else:
                            new_state[v] = state[v]
                    steps.append(
                        CycleStep(
                            transition=t_index,
                            conjunct=c_index,
                            choices=dict(choices),
                        )
                    )
                    yield from walk(index + 1, new_state, new_rows, steps)
                    steps.pop()

        yield from walk(0, identity, [], [])

    # -- closure refinement ------------------------------------------------------

    def _refine(
        self, rows: List[Constraint], f_map: Dict[str, LinExpr]
    ) -> Optional[List[Constraint]]:
        """Refine the candidate until closed under ``F``, or give up."""
        S: List[Constraint] = []
        seen = set()

        def add(row: Constraint) -> str:
            if row.is_trivially_true():
                return "dup"
            if row.is_trivially_false():
                return "infeasible"
            key = row.normalized()
            if key in seen:
                return "dup"
            seen.add(key)
            S.append(row)
            return "added"

        for row in rows:
            if add(row) == "infeasible":
                return None

        for _ in range(MAX_REFINEMENTS):
            self._check_stop()
            self.statistics.refinements += 1
            if S:
                feasible = check_conjunction(
                    S, integer_variables=self._integer, kernel=self.kernel
                )
                if not feasible.satisfiable:
                    return None
            escape = self._find_escape(S, f_map)
            if escape is None:
                return S
            self.statistics.escapes += 1
            model, violated = escape
            state = {
                v: model.get(v, Fraction(0)) for v in self._variables
            }
            self._emit(
                "nonterm_escape",
                state={name: str(value) for name, value in state.items()},
            )
            progressed = False
            for pool_row in self._pool:
                if pool_row.normalized() in seen:
                    continue
                if not pool_row.satisfied_by(state):
                    status = add(pool_row)
                    if status == "infeasible":
                        return None
                    if status == "added":
                        progressed = True
                        break
            if not progressed:
                # Weakest-precondition fallback: require the violated row
                # to also hold after the pass.
                if add(violated.substitute(f_map)) != "added":
                    return None
        return None

    def _find_escape(
        self, S: List[Constraint], f_map: Dict[str, LinExpr]
    ) -> Optional[Tuple[Dict[str, Fraction], Constraint]]:
        """A state of ``S`` whose image escapes some row, or ``None``."""
        for row in S:
            image = row.substitute(f_map)
            for branch in negation_branches(image):
                if branch.is_trivially_false():
                    continue
                if branch.is_trivially_true():
                    # The row can never hold after the pass; any state of
                    # S (known feasible) escapes.
                    witness = check_conjunction(
                        S, integer_variables=self._integer, kernel=self.kernel
                    )
                    return witness.model, row
                result = check_conjunction(
                    S + [branch],
                    integer_variables=self._integer,
                    kernel=self.kernel,
                )
                if result.satisfiable:
                    return result.model, row
        return None

    # -- stem search -------------------------------------------------------------

    def _stem_paths(self, cutpoint: str) -> List[List[Transition]]:
        """Simple paths initial location -> *cutpoint*, shortest first."""
        results: List[List[Transition]] = []

        def visit(location: str, path: List[Transition], visited) -> None:
            if len(results) >= MAX_STEM_PATHS:
                return
            if location == cutpoint:
                results.append(list(path))
                return
            if len(path) >= MAX_STEM_LENGTH:
                return
            for transition in self.automaton.outgoing(location):
                if transition.target in visited:
                    continue
                path.append(transition)
                visit(
                    transition.target, path, visited | {transition.target}
                )
                path.pop()

        visit(
            self.automaton.initial_location,
            [],
            {self.automaton.initial_location},
        )
        results.sort(key=len)
        return results

    def _find_stem(
        self, cutpoint: str, S: List[Constraint]
    ) -> Optional[Tuple[Dict[str, Fraction], List[StemStep]]]:
        """A concrete initial state + havoc choices landing in ``S``."""
        init_conjuncts = dnf_conjunctions(self.automaton.initial_condition)
        base_map = {v: "%s@stem0" % v for v in self._variables}
        base_integers = {
            base_map[v] for v in self._variables if v in self._integer
        }
        for path in self._stem_paths(cutpoint):
            for attempt in self._stem_attempts(
                path, init_conjuncts, S, base_map, base_integers
            ):
                self._check_stop()
                self.statistics.stems += 1
                rows, slots_by_step, integer_names = attempt
                result = check_conjunction(
                    rows, integer_variables=integer_names, kernel=self.kernel
                )
                if not result.satisfiable:
                    continue
                model = result.model
                initial = {
                    v: model.get(base_map[v], Fraction(0))
                    for v in self._variables
                }
                steps = [
                    StemStep(
                        transition=t_index,
                        choices={
                            v: model.get(name, Fraction(0))
                            for v, name in slots.items()
                        },
                    )
                    for t_index, slots in slots_by_step
                ]
                self._emit("nonterm_stem", length=len(path))
                return initial, steps
        return None

    def _stem_attempts(
        self,
        path: List[Transition],
        init_conjuncts: List[List[Constraint]],
        S: List[Constraint],
        base_map: Dict[str, str],
        base_integers,
    ) -> Iterator[Tuple[List[Constraint], List[Tuple[int, Dict[str, str]]], set]]:
        """Constraint systems for one stem path, one per conjunct combo."""
        produced = 0

        def walk(index, state, rows, slots_by_step, integer_names):
            nonlocal produced
            if produced >= MAX_STEM_CANDIDATES:
                return
            if index == len(path):
                final_rows = list(rows)
                for row in S:
                    pulled = row.substitute(state)
                    if pulled.is_trivially_false():
                        return
                    if pulled.is_trivially_true():
                        continue
                    final_rows.append(pulled)
                produced += 1
                yield final_rows, list(slots_by_step), set(integer_names)
                return
            transition = path[index]
            t_index = self._transition_index[id(transition)]
            for conjunct in self._conjunctions(transition):
                new_rows = list(rows)
                feasible = True
                for row in conjunct:
                    pulled = row.substitute(state)
                    if pulled.is_trivially_false():
                        feasible = False
                        break
                    if pulled.is_trivially_true():
                        continue
                    new_rows.append(pulled)
                if not feasible:
                    continue
                new_state = dict(state)
                new_integers = set(integer_names)
                slots: Dict[str, str] = {}
                for v in self._variables:
                    if v not in transition.updates:
                        continue
                    expr = transition.updates[v]
                    if expr is None:
                        name = "%s@stem%d" % (v, index + 1)
                        slots[v] = name
                        new_state[v] = LinExpr.variable(name)
                        if v in self._integer:
                            new_integers.add(name)
                    else:
                        new_state[v] = expr.substitute(state)
                slots_by_step.append((t_index, slots))
                yield from walk(
                    index + 1, new_state, new_rows, slots_by_step, new_integers
                )
                slots_by_step.pop()

        for conjunct in init_conjuncts:
            rows0: List[Constraint] = []
            feasible = True
            for row in conjunct:
                renamed = row.rename(base_map)
                if renamed.is_trivially_false():
                    feasible = False
                    break
                if renamed.is_trivially_true():
                    continue
                rows0.append(renamed)
            if not feasible:
                continue
            state0 = {
                v: LinExpr.variable(base_map[v]) for v in self._variables
            }
            yield from walk(0, state0, rows0, [], set(base_integers))

    # -- self-replay -------------------------------------------------------------

    def _replays(self, lasso: Lasso) -> bool:
        """Concretely execute the lasso before handing it out.

        Guards against engine bugs only — the authoritative replay is
        the independent checker's.
        """
        transitions = self.automaton.transitions
        state = {
            v: Fraction(lasso.initial.get(v, 0)) for v in self._variables
        }
        if not evaluate_formula(self.automaton.initial_condition, state):
            return False
        location = self.automaton.initial_location
        for step in lasso.stem:
            if not 0 <= step.transition < len(transitions):
                return False
            transition = transitions[step.transition]
            if transition.source != location:
                return False
            if not evaluate_formula(transition.guard, state):
                return False
            new_state = dict(state)
            for v, expr in transition.updates.items():
                if expr is None:
                    if v not in step.choices:
                        return False
                    new_state[v] = step.choices[v]
                else:
                    new_state[v] = expr.evaluate(state)
            state = new_state
            location = transition.target
        if location != lasso.cutpoint:
            return False
        if not all(row.satisfied_by(state) for row in lasso.rows):
            return False
        for _ in range(REPLAY_ITERATIONS):
            entry = dict(state)
            for step in lasso.cycle:
                if not 0 <= step.transition < len(transitions):
                    return False
                transition = transitions[step.transition]
                if transition.source != location:
                    return False
                if not evaluate_formula(transition.guard, state):
                    return False
                new_state = dict(state)
                for v, expr in transition.updates.items():
                    if expr is None:
                        choice = step.choices.get(v)
                        if choice is None:
                            return False
                        new_state[v] = choice.evaluate(entry)
                    else:
                        new_state[v] = expr.evaluate(state)
                state = new_state
                location = transition.target
            if location != lasso.cutpoint:
                return False
            if not all(row.satisfied_by(state) for row in lasso.rows):
                return False
            for v in self._integer:
                if state[v].denominator != 1:
                    return False
        return True


def synthesize_recurrence(
    automaton: ControlFlowAutomaton,
    budget: int = DEFAULT_BUDGET,
    observers: Sequence[CegisObserver] = (),
    should_stop: Optional[Callable[[], bool]] = None,
    kernel: str = "exact",
) -> NontermResult:
    """Search for a recurrence set of *automaton*; see the module doc."""
    synthesizer = RecurrenceSynthesizer(
        automaton,
        budget=budget,
        observers=observers,
        should_stop=should_stop,
        kernel=kernel,
    )
    return synthesizer.synthesize()
