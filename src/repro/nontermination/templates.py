"""Recurrence-set templates: where candidate polyhedra come from.

The engine's candidate sets ``S = {x | Gx <= g}`` are built from three
syntactic sources, all derived from the automaton itself:

* the **pulled-back guards** of one concrete cycle at a cutpoint — the
  weakest description of "this pass around the cycle is enabled";
* a **pool** of atomic guard rows (:func:`candidate_pool`) harvested from
  every transition guard and the initial condition, used to strengthen a
  leaking candidate with program-relevant facts (e.g. the ``k >= 1`` an
  ``assume`` established before the loop) before falling back to weakest
  preconditions;
* per-havoc **choice templates** (:func:`sigma_candidates`) — the small
  affine menu of values a demonic ``nondet()`` is angelically resolved
  to.  For nontermination, nondeterminism is on our side: *any* concrete
  affine instantiation that keeps the cycle enabled witnesses an infinite
  run.  All candidates have integral coefficients, so integer programs
  stay on integer trajectories.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.linexpr.transform import formula_atoms
from repro.program.automaton import ControlFlowAutomaton


def negation_branches(constraint: Constraint) -> List[Constraint]:
    """The disjunctive branches of ``not constraint`` (one per branch).

    Mirrors the checker's atom negation: an equality splits into two
    strict inequalities, everything else negates in place.
    """
    if constraint.is_equality():
        return [
            Constraint(constraint.expr, Relation.LT),
            Constraint(constraint.expr * Fraction(-1), Relation.LT),
        ]
    return [constraint.negate()]


def candidate_pool(automaton: ControlFlowAutomaton) -> List[Constraint]:
    """Atomic guard/initial-condition rows, deduplicated, automaton order.

    Every row speaks only about program variables (a front-end
    invariant), so any of them may soundly strengthen a recurrence-set
    candidate — a smaller ``S`` is still a recurrence set as long as it
    stays non-empty, closed and reachable.
    """
    rows: List[Constraint] = []
    seen = set()

    def add(constraint: Constraint) -> None:
        if constraint.is_trivially_true() or constraint.is_trivially_false():
            return
        if not constraint.variables() <= set(automaton.variables):
            return
        key = constraint.normalized()
        if key in seen:
            return
        seen.add(key)
        rows.append(constraint)

    for constraint in formula_atoms(automaton.initial_condition):
        add(constraint)
    for transition in automaton.transitions:
        for constraint in formula_atoms(transition.guard):
            add(constraint)
    return rows


def sigma_candidates(name: str, current: LinExpr) -> List[LinExpr]:
    """The affine menu for a havoc of *name*, over the cycle-entry state.

    *current* is the symbolic value of *name* just before the havoc
    (itself affine over the entry state), so "keep the value" is always
    the first candidate.  The menu is deliberately tiny — recurrence sets
    of the fuzzer gadgets and the corpus need nothing richer, and every
    extra candidate multiplies the search.
    """
    entry = LinExpr.variable(name)
    one = LinExpr.constant(1)
    candidates = [
        current,
        entry,
        LinExpr.constant(1),
        LinExpr.constant(0),
        LinExpr.constant(-1),
        current + one,
        current - one,
    ]
    unique: List[LinExpr] = []
    seen: Dict[object, bool] = {}
    for candidate in candidates:
        key = (tuple(sorted(candidate.terms.items())), candidate.constant_term)
        if key in seen:
            continue
        seen[key] = True
        unique.append(candidate)
    return unique
