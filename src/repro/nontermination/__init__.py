"""Recurrence-set synthesis: proving *non*-termination with a witness.

The subsystem mirrors the termination side of the house.  The engine
(:mod:`repro.nontermination.engine`) runs a CEGIS-style refinement loop
searching for a **recurrence set** — a polyhedron ``S`` over the program
variables at a cutpoint that is non-empty, reachable from the initial
states, and closed under one concrete pass around a cycle (escaping
states are the counterexamples; they refine the candidate).  Success is
packaged as a :class:`~repro.nontermination.witness.Lasso` — a concrete
stem plus a symbolic cycle — which the *independent*
:func:`repro.checking.recurrence.check_recurrence` re-proves with the
Farkas engine and replays step-by-step against the automaton semantics.

Layering: this package sits beside :mod:`repro.synthesis` and imports
only ``linexpr``/``program``/``smt`` plus the synthesis-event seams
(:class:`~repro.synthesis.engine.CegisEvent`,
:class:`~repro.synthesis.engine.SynthesisCancelled`).  It never imports
``repro.api`` or ``repro.checking``.
"""

from repro.nontermination.engine import (
    NontermResult,
    NontermStatistics,
    RecurrenceSynthesizer,
    synthesize_recurrence,
)
from repro.nontermination.witness import CycleStep, Lasso, StemStep

__all__ = [
    "CycleStep",
    "Lasso",
    "NontermResult",
    "NontermStatistics",
    "RecurrenceSynthesizer",
    "StemStep",
    "synthesize_recurrence",
]
