"""Benchmark program descriptions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.frontend.lowering import compile_program
from repro.program.automaton import ControlFlowAutomaton


@dataclass
class BenchmarkProgram:
    """One benchmark: a named program plus its expected status.

    ``source`` is mini-language text; alternatively ``factory`` builds a
    control-flow automaton directly (used for the handful of benchmarks
    that are naturally automaton-shaped).  ``terminating`` records the
    ground truth so the harness can detect soundness violations.
    """

    name: str
    suite: str
    terminating: bool
    source: Optional[str] = None
    factory: Optional[Callable[[], ControlFlowAutomaton]] = None
    description: str = ""

    def build(self) -> ControlFlowAutomaton:
        """Compile the benchmark into a control-flow automaton."""
        if self.factory is not None:
            return self.factory()
        if self.source is None:
            raise ValueError("benchmark %r has neither source nor factory" % self.name)
        return compile_program(self.source, self.name)

    def __repr__(self) -> str:
        return "BenchmarkProgram(%s/%s, %s)" % (
            self.suite,
            self.name,
            "terminating" if self.terminating else "non-terminating",
        )
