"""Termination-Competition-style integer programs (129 programs).

The Integer Transition System / C-Integer categories of the Termination
Competition consist of many small programs: single loops with linear
updates, a few nested or phased loops, and a number of non-terminating
instances that tools must not claim to prove.  The suite below mixes
hand-written classics with parametric families; its size (129) matches the
count reported in Table 1 of the paper.
"""

from __future__ import annotations

from typing import List

from repro.benchsuite.program import BenchmarkProgram

SUITE = "termcomp"


def _simple(name: str, source: str, terminating: bool = True, description: str = "") -> BenchmarkProgram:
    return BenchmarkProgram(name, SUITE, terminating, source, description=description)


def _countdown(step: int) -> BenchmarkProgram:
    source = """
    var x;
    while (x > 0) { x = x - %d; }
    """ % step
    return _simple("countdown_step%d" % step, source, True, "x decreases by %d" % step)


def _count_up(bound: int) -> BenchmarkProgram:
    source = """
    var i, n;
    assume(n <= %d);
    i = 0;
    while (i < n) { i = i + 1; }
    """ % bound
    return _simple("count_up_to_%d" % bound, source, True, "counter races to a bound")


def _race(gap: int) -> BenchmarkProgram:
    source = """
    var x, y;
    while (x < y) { x = x + %d; y = y + 1; }
    """ % gap
    terminating = gap >= 2
    return _simple(
        "race_gap%d" % gap,
        source,
        terminating,
        "x gains %d per step on y (terminates iff the gap closes)" % gap,
    )


def _two_phase(reset: int) -> BenchmarkProgram:
    source = """
    var x, y;
    assume(y >= 0 and y <= %d);
    while (x > 0) {
        if (y > 0) { y = y - 1; } else { x = x - 1; y = %d; }
    }
    """ % (reset, reset)
    return _simple(
        "two_phase_reset%d" % reset,
        source,
        True,
        "inner budget y refilled each time x decreases",
    )


def _diverging(kind: int) -> BenchmarkProgram:
    sources = {
        0: ("diverge_increment", "var x;\nassume(x >= 1);\nwhile (x > 0) { x = x + 1; }"),
        1: ("diverge_constant", "var x;\nassume(x == 5);\nwhile (x > 0) { skip; }"),
        2: ("diverge_oscillate", "var x;\nwhile (x != 0) { x = 0 - x; }"),
        3: (
            "diverge_havoc",
            "var x;\nwhile (x > 0) { x = nondet(); assume(x > 0); }",
        ),
        4: ("diverge_even", "var x;\nassume(x >= 2);\nwhile (x >= 2) { x = x; }"),
    }
    name, source = sources[kind]
    return _simple(name, source, False, "non-terminating instance")


HANDWRITTEN = [
    _simple(
        "gcd_subtraction",
        """
        var a, b;
        assume(a >= 1 and b >= 1);
        while (a != b) {
            if (a > b) { a = a - b; } else { b = b - a; }
        }
        """,
        True,
        "Euclid by repeated subtraction",
    ),
    _simple(
        "terminate_by_wraparound",
        """
        var x, n;
        assume(n >= 0);
        x = n;
        while (x >= 0) { x = x - 1; }
        """,
        True,
        "runs one step past zero",
    ),
    _simple(
        "bounded_nondet_walk",
        """
        var x, fuel;
        assume(fuel >= 0);
        while (fuel > 0) {
            if (nondet()) { x = x + 1; } else { x = x - 1; }
            fuel = fuel - 1;
        }
        """,
        True,
        "random walk limited by fuel",
    ),
    _simple(
        "alternating_decrease",
        """
        var x, turn;
        assume(turn >= 0 and turn <= 1);
        while (x > 0) {
            if (turn > 0) { x = x - 2; turn = 0; } else { x = x - 1; turn = 1; }
        }
        """,
        True,
        "decrease amount depends on a toggling flag",
    ),
    _simple(
        "collatz_shaped_bounded",
        """
        var x, steps;
        assume(steps >= 0 and steps <= 100000);
        while (x > 1 and steps > 0) {
            if (nondet()) { x = x - 1; } else { x = x + 1; }
            steps = steps - 1;
        }
        """,
        True,
        "unknown dynamics cut off by a step counter",
    ),
    _simple(
        "nested_dependent",
        """
        var i, j, n;
        assume(n >= 0 and n <= 1000);
        i = 0;
        while (i < n) {
            j = i;
            while (j < n) { j = j + 1; }
            i = i + 1;
        }
        """,
        True,
        "inner loop starts where the outer counter is",
    ),
    _simple(
        "decrease_on_either",
        """
        var x, y;
        while (x > 0 and y > 0) {
            if (nondet()) { x = x - 1; } else { y = y - 1; }
        }
        """,
        True,
        "either coordinate decreases; sum is a ranking function",
    ),
    _simple(
        "widening_challenge",
        """
        var x, y;
        assume(x >= 0 and y >= 0 and x <= 100 and y <= 100);
        while (x + y > 0) {
            if (x > 0) { x = x - 1; } else { y = y - 1; }
        }
        """,
        True,
        "sum of two nonnegative counters",
    ),
    _simple(
        "nonterm_partial_guard",
        """
        var x, y;
        while (x > 0) {
            if (y > 0) { x = x - 1; } else { skip; }
        }
        """,
        False,
        "stutters forever once y is exhausted",
    ),
    _simple(
        "swap_until_sorted",
        """
        var a, b, c;
        while (a > b or b > c) {
            if (a > b) {
                a = b; b = a;
            } else {
                b = c; c = b;
            }
        }
        """,
        True,
        "terminates, but the progress argument is not linear-lexicographic",
    ),
]


def build_suite() -> List[BenchmarkProgram]:
    """The 129 TermComp-style programs."""
    programs: List[BenchmarkProgram] = []
    programs.extend(HANDWRITTEN)
    for step in range(1, 21):
        programs.append(_countdown(step))
    for bound in (10, 100, 1000, 10000, 100000):
        programs.append(_count_up(bound))
    for gap in range(0, 12):
        programs.append(_race(gap))
    for reset in range(1, 11):
        programs.append(_two_phase(reset))
    for kind in range(5):
        programs.append(_diverging(kind))

    # Linear-update single loops: x' = a·x + b with a guard, a large family of
    # tiny programs exactly in the competition's style.
    for offset in range(1, 16):
        source = """
        var x, y;
        assume(y >= 0);
        while (x > y) { x = x - %d; }
        """ % offset
        programs.append(
            _simple("gap_closing_%d" % offset, source, True, "x sinks to a parameter")
        )
    for offset in range(1, 16):
        source = """
        var x, y;
        while (x > 0) { x = x + y; assume(y <= 0 - %d); }
        """ % offset
        programs.append(
            _simple(
                "parametric_step_%d" % offset,
                source,
                True,
                "step size is a parameter bounded away from zero",
            )
        )
    # Double-variable lexicographic families.
    for reset in range(1, 16):
        source = """
        var x, y;
        assume(y <= %d);
        while (x > 0) {
            if (y > 0) { y = y - 1; } else { x = x - 1; y = %d; }
        }
        """ % (reset, reset)
        programs.append(
            _simple(
                "lexicographic_%d" % reset,
                source,
                True,
                "classic ⟨x, y⟩ lexicographic descent",
            )
        )
    # Counter pairs where an unrelated variable keeps growing.
    for growth in range(1, 16):
        source = """
        var x, y;
        while (x > 0) { x = x - 1; y = y + %d; }
        """ % growth
        programs.append(
            _simple(
                "shift_pair_%d" % growth,
                source,
                True,
                "x counts down while y grows (y is irrelevant)",
            )
        )
    # Non-terminating drifting loops.
    for drift in range(1, 8):
        source = """
        var x;
        assume(x >= %d);
        while (x > 0) { x = x + %d; }
        """ % (drift, drift)
        programs.append(
            _simple("nonterm_drift_%d" % drift, source, False, "x drifts upwards")
        )

    assert len(programs) == 129, len(programs)
    return programs


PROGRAMS = build_suite()
