"""Registry of the benchmark suites."""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite import polybench, sorts, termcomp, wtc
from repro.benchsuite.program import BenchmarkProgram

SUITES: Dict[str, List[BenchmarkProgram]] = {
    "polybench": polybench.PROGRAMS,
    "sorts": sorts.PROGRAMS,
    "termcomp": termcomp.PROGRAMS,
    "wtc": wtc.PROGRAMS,
}


def suite_names() -> List[str]:
    return list(SUITES)


def get_suite(name: str) -> List[BenchmarkProgram]:
    """The programs of the named suite."""
    if name not in SUITES:
        raise KeyError(
            "unknown suite %r (available: %s)" % (name, ", ".join(SUITES))
        )
    return list(SUITES[name])


def get_program(suite: str, name: str) -> BenchmarkProgram:
    """Look a single benchmark up by suite and name."""
    for program in get_suite(suite):
        if program.name == name:
            return program
    raise KeyError("no benchmark %r in suite %r" % (name, suite))
