"""Benchmark suites mirroring the paper's evaluation (Table 1).

The original evaluation runs on four suites of C programs; the
reproduction re-models them in the mini-language of
:mod:`repro.frontend` (or, for a few automaton-shaped examples, directly
through the builder API):

* :mod:`repro.benchsuite.polybench` — 30 affine loop-nest kernels in the
  style of PolyBench (linear-algebra and stencil kernels),
* :mod:`repro.benchsuite.sorts` — 6 comparison-sort loop structures,
* :mod:`repro.benchsuite.termcomp` — 129 small integer programs in the
  style of the Termination Competition's Integer Transition System
  category (including non-terminating instances),
* :mod:`repro.benchsuite.wtc` — 58 programs in the style of the WTC suite
  used by Alias et al. (nested loops, phase changes, resets, random
  walks).

Every program records whether it is expected to terminate, so the
harness can report both "proved" counts (the Table 1 metric) and
soundness violations (proving a non-terminating program, which must never
happen).
"""

from repro.benchsuite.program import BenchmarkProgram
from repro.benchsuite.registry import SUITES, get_suite, suite_names

__all__ = ["BenchmarkProgram", "SUITES", "get_suite", "suite_names"]
