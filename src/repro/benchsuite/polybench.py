"""PolyBench-style affine loop-nest kernels (30 programs).

PolyBench kernels are dense linear-algebra and stencil computations whose
control structure is a perfect (or almost perfect) nest of counted affine
loops; the array accesses are irrelevant to termination, so each kernel is
modelled by its loop-control skeleton over the loop counters and symbolic
problem sizes.  All 30 programs terminate.
"""

from __future__ import annotations

from typing import List

from repro.benchsuite.program import BenchmarkProgram

SUITE = "polybench"


def _counted_loop_nest(name: str, depth: int, bound: str = "n") -> BenchmarkProgram:
    """A perfect nest of ``depth`` counted loops with bound *bound*."""
    counters = ["i%d" % level for level in range(depth)]
    lines = ["var %s, %s;" % (", ".join(counters), bound)]
    lines.append("assume(%s >= 0 and %s <= 1000);" % (bound, bound))
    indent = ""
    for level, counter in enumerate(counters):
        lines.append("%s%s = 0;" % (indent, counter))
        lines.append("%swhile (%s < %s) {" % (indent, counter, bound))
        indent += "    "
    lines.append("%sskip;" % indent)
    for level in reversed(range(depth)):
        indent = "    " * level
        lines.append("%s    %s = %s + 1;" % (indent, counters[level], counters[level]))
        lines.append("%s}" % indent)
    return BenchmarkProgram(
        name=name,
        suite=SUITE,
        terminating=True,
        source="\n".join(lines),
        description="%d-deep counted affine loop nest" % depth,
    )


def _triangular_nest(name: str) -> BenchmarkProgram:
    """A triangular double loop (``j`` bounded by ``i``), e.g. trisolv/lu."""
    source = """
    var i, j, n;
    assume(n >= 0 and n <= 1000);
    i = 0;
    while (i < n) {
        j = 0;
        while (j < i) { j = j + 1; }
        i = i + 1;
    }
    """
    return BenchmarkProgram(name, SUITE, True, source, description="triangular nest")


def _time_stencil(name: str, spatial_depth: int) -> BenchmarkProgram:
    """A stencil: an outer time loop around a spatial sweep (jacobi/seidel)."""
    counters = ["i%d" % level for level in range(spatial_depth)]
    lines = ["var t, tsteps, %s, n;" % ", ".join(counters)]
    lines.append("assume(tsteps >= 0 and tsteps <= 500 and n >= 0 and n <= 500);")
    lines.append("t = 0;")
    lines.append("while (t < tsteps) {")
    indent = "    "
    for counter in counters:
        lines.append("%s%s = 1;" % (indent, counter))
        lines.append("%swhile (%s < n - 1) {" % (indent, counter))
        indent += "    "
    lines.append("%sskip;" % indent)
    for level in reversed(range(spatial_depth)):
        indent = "    " * (level + 1)
        lines.append("%s    %s = %s + 1;" % (indent, counters[level], counters[level]))
        lines.append("%s}" % indent)
    lines.append("    t = t + 1;")
    lines.append("}")
    return BenchmarkProgram(
        name, SUITE, True, "\n".join(lines), description="time-iterated stencil"
    )


def _reduction_with_guard(name: str) -> BenchmarkProgram:
    """A reduction loop with an inner data-dependent (havocked) branch."""
    source = """
    var i, n, acc;
    assume(n >= 0 and n <= 1000);
    i = 0;
    while (i < n) {
        if (nondet()) { acc = acc + 1; } else { acc = acc - 1; }
        i = i + 1;
    }
    """
    return BenchmarkProgram(name, SUITE, True, source, description="guarded reduction")


def build_suite() -> List[BenchmarkProgram]:
    """The 30 PolyBench-style kernels."""
    programs: List[BenchmarkProgram] = []

    # Linear-algebra kernels: mostly 2- and 3-deep rectangular nests.
    double_nests = [
        "gemver", "gesummv", "atax", "bicg", "mvt", "trmm",
        "syrk", "syr2k", "gemm_init", "covariance_mean",
    ]
    for name in double_nests:
        programs.append(_counted_loop_nest(name, depth=2))
    triple_nests = [
        "gemm", "2mm_first", "2mm_second", "3mm_first", "3mm_second",
        "doitgen", "correlation",
    ]
    for name in triple_nests:
        programs.append(_counted_loop_nest(name, depth=3))

    # Triangular solvers and factorisations.
    for name in ["trisolv", "lu", "cholesky", "ludcmp", "dynprog"]:
        programs.append(_triangular_nest(name))

    # Stencils: outer time loop around 1-D or 2-D sweeps.
    programs.append(_time_stencil("jacobi_1d", spatial_depth=1))
    programs.append(_time_stencil("jacobi_2d", spatial_depth=2))
    programs.append(_time_stencil("seidel_2d", spatial_depth=2))
    programs.append(_time_stencil("fdtd_2d", spatial_depth=2))
    programs.append(_time_stencil("adi", spatial_depth=2))

    # Reductions / scans with data-dependent branches.
    programs.append(_reduction_with_guard("durbin"))
    programs.append(_reduction_with_guard("gramschmidt_norm"))
    programs.append(_counted_loop_nest("floyd_warshall", depth=3, bound="n"))

    assert len(programs) == 30, len(programs)
    return programs


PROGRAMS = build_suite()
