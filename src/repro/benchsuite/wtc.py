"""WTC-style programs (58 programs).

The WTC suite (used by Alias et al. and in the paper's Table 1) gathers
termination challenges from the literature: loops whose progress is
relational (two counters chasing each other), loops with resets and
phases, nested loops sharing counters, random walks, and a few
non-terminating instances.  The reproduction re-creates representative
members plus parametric variants to match the suite's size.
"""

from __future__ import annotations

from typing import List

from repro.benchsuite.program import BenchmarkProgram

SUITE = "wtc"


def _simple(name: str, source: str, terminating: bool = True, description: str = "") -> BenchmarkProgram:
    return BenchmarkProgram(name, SUITE, terminating, source, description=description)


CLASSICS = [
    _simple(
        "easy1",
        """
        var x, y;
        assume(y >= 1);
        while (x > 0) { x = x - y; }
        """,
        True,
        "decrement by a positive parameter",
    ),
    _simple(
        "easy2",
        """
        var x, y, z;
        assume(z >= 1);
        while (x > y) { x = x - z; }
        """,
        True,
        "chase a parameter from above",
    ),
    _simple(
        "ndecr",
        """
        var i, n;
        i = n - 1;
        while (i > 1) { i = i - 1; }
        """,
        True,
        "straightforward countdown with an initial offset",
    ),
    _simple(
        "cousot9",
        """
        var i, j, N;
        assume(N >= 0);
        i = N;
        while (i > 0) {
            if (j > 0) { j = j - 1; } else { j = N; i = i - 1; }
        }
        """,
        True,
        "inner budget refilled from a parameter (paper's Example 3 shape)",
    ),
    _simple(
        "wise",
        """
        var x, y;
        while (x > 0 and y > 0) {
            if (nondet()) { x = x - 1; y = nondet(); assume(y >= 0); }
            else { y = y - 1; }
        }
        """,
        True,
        "outer progress resets the inner counter nondeterministically",
    ),
    _simple(
        "wcet2",
        """
        var i, j;
        i = 0;
        while (i < 10) {
            j = 25;
            while (j > i) { j = j - 1; }
            i = i + 1;
        }
        """,
        True,
        "nested loop with constant bounds (WCET-style)",
    ),
    _simple(
        "relational1",
        """
        var x, y;
        while (x >= 0 and y >= 0) {
            if (nondet()) { x = x - 1; } else { x = y; y = y - 1; }
        }
        """,
        True,
        "needs a lexicographic argument over ⟨y, x⟩",
    ),
    _simple(
        "random_walk",
        """
        var x;
        assume(x >= 1);
        while (x > 0) {
            if (nondet()) { x = x - 1; } else { x = x + 1; }
        }
        """,
        False,
        "unbiased random walk: non-terminating in the worst case",
    ),
    _simple(
        "nonterm_pingpong",
        """
        var x, y;
        assume(x >= 1 and y >= 1);
        while (x > 0 and y > 0) { x = y; y = x; }
        """,
        False,
        "values copied back and forth forever",
    ),
    _simple(
        "nested_shared",
        """
        var i, j, n;
        assume(n >= 0 and n <= 1000);
        i = 0;
        while (i < n) {
            j = i;
            while (j > 0) { j = j - 1; }
            i = i + 1;
        }
        """,
        True,
        "inner countdown seeded by the outer counter",
    ),
    _simple(
        "speedup",
        """
        var x, speed;
        assume(speed >= 1);
        while (x > 0) { x = x - speed; speed = speed + 1; }
        """,
        True,
        "decrement grows over time",
    ),
    _simple(
        "exchange",
        """
        var x, y;
        while (x > 0 and y > 0) { x = x + y; y = y - 1; x = x - y - 2; }
        """,
        True,
        "net effect decreases x once y is folded in",
    ),
    _simple(
        "counterexample_guided",
        """
        var x, y, z;
        assume(z >= 0 and z <= 100);
        while (x > 0) {
            if (y > z) { x = x - 1; y = 0; } else { y = y + 1; }
        }
        """,
        True,
        "progress only every z+1 iterations",
    ),
]


def _phase_loop(threshold: int) -> BenchmarkProgram:
    source = """
    var x, d, n;
    assume(n >= 0 and n <= %d and x == 0 and d == 1);
    while (x >= 0 and x <= n) {
        if (x == n) { d = 0 - 1; }
        x = x + d;
    }
    """ % threshold
    return _simple(
        "phases_%d" % threshold,
        source,
        True,
        "two-phase up-then-down sweep (the §8 disjunctive-invariant example)",
    )


def _chase(step: int) -> BenchmarkProgram:
    source = """
    var x, y;
    while (x < y) { x = x + %d; y = y - 1; }
    """ % step
    return _simple(
        "chase_%d" % step, source, True, "two counters approaching each other"
    )


def _reset_budget(budget: int) -> BenchmarkProgram:
    source = """
    var i, j, n;
    assume(n >= 0 and n <= %d);
    i = n;
    while (i > 0) {
        if (j > 0) { j = j - 1; } else { i = i - 1; j = n; }
    }
    """ % budget
    return _simple(
        "reset_budget_%d" % budget,
        source,
        True,
        "lexicographic descent with parametric refills",
    )


def _strided(stride: int) -> BenchmarkProgram:
    source = """
    var i, n;
    assume(n >= 0 and n <= 100000);
    i = 0;
    while (i < n) { i = i + %d; }
    """ % stride
    return _simple("strided_%d" % stride, source, True, "counted loop with stride %d" % stride)


def _nonterm_gap(gap: int) -> BenchmarkProgram:
    source = """
    var x, y;
    assume(x < y);
    while (x < y) { x = x + 1; y = y + %d; }
    """ % gap
    return _simple(
        "nonterm_gap_%d" % gap,
        source,
        False,
        "the gap never closes (y grows at least as fast)",
    )


def build_suite() -> List[BenchmarkProgram]:
    """The 58 WTC-style programs."""
    programs: List[BenchmarkProgram] = list(CLASSICS)
    for threshold in (10, 100, 1000, 10000, 100000):
        programs.append(_phase_loop(threshold))
    for step in range(1, 11):
        programs.append(_chase(step))
    for budget in (5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000):
        programs.append(_reset_budget(budget))
    for stride in range(1, 16):
        programs.append(_strided(stride))
    for gap in range(1, 6):
        programs.append(_nonterm_gap(gap))
    assert len(programs) == 58, len(programs)
    return programs


PROGRAMS = build_suite()
