"""Sorting-algorithm loop structures (6 programs).

Comparison sorts are modelled by their index manipulation: the array
contents are irrelevant to termination, but comparisons on them are kept
as nondeterministic choices, which is exactly what makes some of these
benchmarks hard (the branch taken cannot be predicted).
"""

from __future__ import annotations

from typing import List

from repro.benchsuite.program import BenchmarkProgram

SUITE = "sorts"


BUBBLE_SORT = """
var i, j, n;
assume(n >= 0 and n <= 10000);
i = n;
while (i > 0) {
    j = 0;
    while (j < i - 1) {
        if (nondet()) { skip; } else { skip; }
        j = j + 1;
    }
    i = i - 1;
}
"""

INSERTION_SORT = """
var i, j, n;
assume(n >= 1 and n <= 10000);
i = 1;
while (i < n) {
    j = i;
    while (j > 0 and nondet()) {
        j = j - 1;
    }
    i = i + 1;
}
"""

SELECTION_SORT = """
var i, j, min, n;
assume(n >= 0 and n <= 10000);
i = 0;
while (i < n) {
    min = i;
    j = i + 1;
    while (j < n) {
        if (nondet()) { min = j; } else { skip; }
        j = j + 1;
    }
    i = i + 1;
}
"""

GNOME_SORT = """
var pos, n;
assume(n >= 0 and n <= 10000);
pos = 0;
while (pos < n) {
    if (pos == 0) {
        pos = pos + 1;
    } else {
        if (nondet()) {
            pos = pos + 1;
        } else {
            pos = pos - 1;
        }
    }
}
"""

COCKTAIL_SORT = """
var lo, hi, j, n;
assume(n >= 0 and n <= 10000);
lo = 0;
hi = n;
while (lo < hi) {
    j = lo;
    while (j < hi - 1) { j = j + 1; }
    hi = hi - 1;
    j = hi;
    while (j > lo) { j = j - 1; }
    lo = lo + 1;
}
"""

SHELL_SORT_GAPS = """
var gap, i, j, n;
assume(n >= 1 and n <= 10000);
gap = n;
while (gap > 1) {
    gap = gap - 1;
    i = gap;
    while (i < n) {
        j = i;
        while (j >= gap and nondet()) {
            j = j - gap;
        }
        i = i + 1;
    }
}
"""


def build_suite() -> List[BenchmarkProgram]:
    """The 6 sorting benchmarks."""
    table = [
        ("bubble_sort", BUBBLE_SORT, "outer countdown, inner counted scan"),
        ("insertion_sort", INSERTION_SORT, "inner loop walks back nondeterministically"),
        ("selection_sort", SELECTION_SORT, "minimum search with data-dependent branch"),
        ("gnome_sort", GNOME_SORT, "position can move backwards (needs relational argument)"),
        ("cocktail_sort", COCKTAIL_SORT, "shrinking window swept in both directions"),
        ("shell_sort", SHELL_SORT_GAPS, "gap sequence with gap-strided inner walk"),
    ]
    return [
        BenchmarkProgram(name, SUITE, True, source, description=description)
        for name, source, description in table
    ]


PROGRAMS = build_suite()
