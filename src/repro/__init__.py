"""Reproduction of "Synthesis of ranking functions using extremal counterexamples".

The package implements the Termite termination analysis (Gonnord,
Monniaux & Radanne, PLDI 2015) and every substrate it needs — exact linear
programming, a lazy optimising SMT solver for linear arithmetic, convex
polyhedra, abstract-interpretation-based invariant generation, a small
imperative front-end — plus the eager and heuristic baselines the paper
compares against and the benchmark suites of its evaluation.

The public surface is the unified analysis API of :mod:`repro.api`: a
typed :class:`AnalysisConfig`, a prover registry (:func:`get_prover` /
:func:`available_provers`), one JSON-serializable :class:`AnalysisResult`
for every tool, and the staged :class:`Analysis` pipeline behind
:func:`analyze` / :func:`analyze_many`.  A ``repro`` command line
(``python -m repro``) sits on top.

Quickstart::

    from repro import AnalysisConfig, analyze

    result = analyze('''
        var x, y;
        assume(y >= 1);
        while (x > 0) { x = x - y; }
    ''', tool="termite", config=AnalysisConfig())
    assert result.proved
    print(result.ranking.pretty())

The historical entry points (:func:`prove_termination`,
:class:`TerminationProver`) remain available as thin wrappers; see
``docs/MIGRATION.md``.
"""

from repro.api import (
    Analysis,
    AnalysisConfig,
    AnalysisRequest,
    AnalysisResult,
    AnalysisStatus,
    ConfigError,
    Provenance,
    RequestError,
    analyze,
    analyze_many,
    available_provers,
    get_prover,
    register_prover,
)
from repro.core import (
    LexicographicRankingFunction,
    TerminationProver,
    TerminationResult,
    prove_termination,
)
from repro.frontend import compile_program, parse_program
from repro.program import AutomatonBuilder, ControlFlowAutomaton, simple_loop

__version__ = "0.3.0"  # keep in sync with pyproject.toml

__all__ = [
    # unified analysis API
    "Analysis",
    "AnalysisConfig",
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisStatus",
    "ConfigError",
    "Provenance",
    "RequestError",
    "analyze",
    "analyze_many",
    "available_provers",
    "get_prover",
    "register_prover",
    # historical entry points (thin wrappers)
    "prove_termination",
    "TerminationProver",
    "TerminationResult",
    "LexicographicRankingFunction",
    # front-end and automata
    "compile_program",
    "parse_program",
    "AutomatonBuilder",
    "ControlFlowAutomaton",
    "simple_loop",
    "__version__",
]
