"""Reproduction of "Synthesis of ranking functions using extremal counterexamples".

The package implements the Termite termination analysis (Gonnord,
Monniaux & Radanne, PLDI 2015) and every substrate it needs — exact linear
programming, a lazy optimising SMT solver for linear arithmetic, convex
polyhedra, abstract-interpretation-based invariant generation, a small
imperative front-end — plus the eager and heuristic baselines the paper
compares against and the benchmark suites of its evaluation.

Quickstart::

    from repro import compile_program, prove_termination

    automaton = compile_program('''
        var x, y;
        assume(y >= 1);
        while (x > 0) { x = x - y; }
    ''')
    result = prove_termination(automaton)
    assert result.proved
    print(result.ranking.pretty())
"""

from repro.core import (
    LexicographicRankingFunction,
    TerminationProver,
    TerminationResult,
    prove_termination,
)
from repro.frontend import compile_program, parse_program
from repro.program import AutomatonBuilder, ControlFlowAutomaton, simple_loop

__version__ = "1.0.0"

__all__ = [
    "prove_termination",
    "TerminationProver",
    "TerminationResult",
    "LexicographicRankingFunction",
    "compile_program",
    "parse_program",
    "AutomatonBuilder",
    "ControlFlowAutomaton",
    "simple_loop",
    "__version__",
]
