"""Eager generator enumeration (Ben-Amram & Genaim style).

The approach of Ben-Amram & Genaim (JACM 2014), as characterised in §1/§3
of the paper: take the transition relation in disjunctive normal form,
compute the vertices and rays of every disjunct *eagerly* with the
double-description method, and solve one ``LP(V, Constraints(I))``
instance over the full generator set (per lexicographic component).

Functionally this proves exactly the same programs as the lazy algorithm
relative to the same invariants (both are complete for lexicographic
linear ranking functions); the difference the paper measures is the cost:
the number of generators — hence LP rows — can be exponential in the
program, whereas the lazy loop only materialises the handful of extremal
counterexamples it actually needs.

The generator-to-u-space mapping is shared with the synthesis package's
double-description oracle (:func:`repro.synthesis.oracles.
disjunct_generators`), and the per-component elimination loop is the
generic :func:`repro.synthesis.engine.eliminate_lexicographic`.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.baselines.dnf import expand_disjuncts
from repro.baselines.result import BaselineResult
from repro.core.lp_instance import LpStatistics, RankingLp
from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction
from repro.linalg.matrix import in_span
from repro.linalg.vector import Vector
from repro.synthesis.engine import eliminate_lexicographic
from repro.synthesis.oracles import disjunct_generators


def eager_generator_synthesis(
    problem: TerminationProblem,
    max_dimension: Optional[int] = None,
) -> BaselineResult:
    """Lexicographic synthesis with the full, eagerly computed generator set."""
    start = time.perf_counter()
    statistics = LpStatistics()
    if max_dimension is None:
        max_dimension = problem.stacked_dimension

    disjuncts = expand_disjuncts(problem)
    generators: List[Tuple[str, Vector]] = []
    for disjunct in disjuncts:
        generators.extend(disjunct_generators(problem, disjunct))

    stacked: List[Vector] = []

    def find_component(remaining):
        """One ``LP(V, Constraints(I))`` solve over the remaining generators."""
        ranking_lp = RankingLp(problem, statistics)
        for _, generator in remaining:
            ranking_lp.add_counterexample(generator)
        solution = ranking_lp.solve()
        component = solution.ranking
        vector = component.stacked_vector(problem.cutset)
        decreased = [
            index
            for index, delta in enumerate(solution.deltas)
            if delta == 1
        ]
        if not decreased:
            return None
        if vector.is_zero() or in_span(vector, stacked):
            return None
        stacked.append(vector)
        return component, decreased

    components, _, proved = eliminate_lexicographic(
        generators, find_component, max_dimension
    )
    if proved and components:
        components[-1].strict = True

    elapsed = time.perf_counter() - start
    ranking = LexicographicRankingFunction(components) if proved else None
    return BaselineResult(
        name="eager-generators (BG14-style)",
        proved=proved,
        ranking=ranking,
        time_seconds=elapsed,
        lp_statistics=statistics,
        details={
            "disjuncts": len(disjuncts),
            "generators": len(generators),
            "dimension": len(components),
        },
    )
