"""Eager generator enumeration (Ben-Amram & Genaim style).

The approach of Ben-Amram & Genaim (JACM 2014), as characterised in §1/§3
of the paper: take the transition relation in disjunctive normal form,
compute the vertices and rays of every disjunct *eagerly* with the
double-description method, and solve one ``LP(V, Constraints(I))``
instance over the full generator set (per lexicographic component).

Functionally this proves exactly the same programs as the lazy algorithm
relative to the same invariants (both are complete for lexicographic
linear ranking functions); the difference the paper measures is the cost:
the number of generators — hence LP rows — can be exponential in the
program, whereas the lazy loop only materialises the handful of extremal
counterexamples it actually needs.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.baselines.dnf import TransitionDisjunct, expand_disjuncts
from repro.baselines.result import BaselineResult
from repro.core.lp_instance import LpStatistics, RankingLp
from repro.core.problem import ONE_COORDINATE, TerminationProblem
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
)
from repro.linalg.matrix import in_span
from repro.linalg.vector import Vector
from repro.polyhedra.dd import constraints_to_generators


def _difference_map(
    problem: TerminationProblem, disjunct: TransitionDisjunct
) -> Tuple[List[str], List[Vector]]:
    """The linear map from a disjunct's state space to the stacked u-space.

    Returns the disjunct's variable ordering and, per stacked coordinate,
    the row vector expressing that coordinate of ``u = e_k((x,1)) −
    e_{k'}((x',1))`` over the disjunct's variables (the constant part is
    handled separately by the caller through the @one coordinate).
    """
    variables = disjunct.variables()
    rows: List[Vector] = []
    for location in problem.cutset:
        for coordinate in problem.space_variables:
            entries = [0] * len(variables)
            if coordinate == ONE_COORDINATE:
                rows.append(Vector(entries))
                continue
            if location == disjunct.source and coordinate in variables:
                entries[variables.index(coordinate)] += 1
            primed = coordinate + "'"
            if location == disjunct.target and primed in variables:
                entries[variables.index(primed)] -= 1
            rows.append(Vector(entries))
    return variables, rows


def _one_offsets(problem: TerminationProblem, disjunct: TransitionDisjunct) -> Vector:
    """The constant contribution of the @one coordinates to ``u``."""
    entries = []
    for location in problem.cutset:
        for coordinate in problem.space_variables:
            value = 0
            if coordinate == ONE_COORDINATE:
                if location == disjunct.source:
                    value += 1
                if location == disjunct.target:
                    value -= 1
            entries.append(value)
    return Vector(entries)


def _disjunct_generators(
    problem: TerminationProblem, disjunct: TransitionDisjunct
) -> List[Tuple[str, Vector]]:
    """Vertices and rays of the disjunct, mapped into the stacked u-space."""
    variables, rows = _difference_map(problem, disjunct)
    offset = _one_offsets(problem, disjunct)
    system = constraints_to_generators(disjunct.constraints, variables)
    generators: List[Tuple[str, Vector]] = []
    for vertex in system.vertices:
        image = Vector([row.dot(vertex) for row in rows]) + offset
        generators.append(("vertex", image))
    for ray in system.all_ray_like():
        image = Vector([row.dot(ray) for row in rows])
        if not image.is_zero():
            generators.append(("ray", image))
    return generators


def eager_generator_synthesis(
    problem: TerminationProblem,
    max_dimension: Optional[int] = None,
) -> BaselineResult:
    """Lexicographic synthesis with the full, eagerly computed generator set."""
    start = time.perf_counter()
    statistics = LpStatistics()
    if max_dimension is None:
        max_dimension = problem.stacked_dimension

    disjuncts = expand_disjuncts(problem)
    generators: List[Tuple[str, Vector]] = []
    for disjunct in disjuncts:
        generators.extend(_disjunct_generators(problem, disjunct))

    components: List[AffineRankingFunction] = []
    stacked: List[Vector] = []
    remaining = list(generators)
    proved = not remaining
    while remaining and len(components) < max_dimension:
        ranking_lp = RankingLp(problem, statistics)
        for _, generator in remaining:
            ranking_lp.add_counterexample(generator)
        solution = ranking_lp.solve()
        component = solution.ranking
        vector = component.stacked_vector(problem.cutset)
        decreased = [
            index
            for index, delta in enumerate(solution.deltas)
            if delta == 1
        ]
        if not decreased:
            break
        if vector.is_zero() or in_span(vector, stacked):
            break
        components.append(component)
        stacked.append(vector)
        remaining = [
            generator
            for index, generator in enumerate(remaining)
            if index not in set(decreased)
        ]
        if not remaining:
            proved = True
            component.strict = True
            break

    elapsed = time.perf_counter() - start
    ranking = LexicographicRankingFunction(components) if proved else None
    return BaselineResult(
        name="eager-generators (BG14-style)",
        proved=proved,
        ranking=ranking,
        time_seconds=elapsed,
        lp_statistics=statistics,
        details={
            "disjuncts": len(disjuncts),
            "generators": len(generators),
            "dimension": len(components),
        },
    )
