"""Common result type for the baseline provers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.lp_instance import LpStatistics
from repro.core.ranking import LexicographicRankingFunction


@dataclass
class BaselineResult:
    """Outcome of a baseline termination prover."""

    name: str
    proved: bool
    ranking: Optional[LexicographicRankingFunction] = None
    time_seconds: float = 0.0
    lp_statistics: LpStatistics = field(default_factory=LpStatistics)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def status(self) -> str:
        return "terminating" if self.proved else "unknown"

    def __repr__(self) -> str:
        return "BaselineResult(%s, %s, %.1f ms, LP avg (%.1f, %.1f))" % (
            self.name,
            self.status,
            self.time_seconds * 1000.0,
            self.lp_statistics.average_rows,
            self.lp_statistics.average_cols,
        )
