"""A Loopus-style syntactic/heuristic termination prover.

Zuleger et al.'s Loopus (as characterised in §10 of the paper) does not
solve a global constraint system: it guesses candidate ranking expressions
syntactically — essentially the left-hand sides of the loop guards — and
checks cheaply whether some lexicographic combination of the candidates
decreases.  The baseline reproduces that spirit:

1. candidates are the guard expressions ``e`` of constraints ``e ≥ b``
   appearing in the transition polyhedra (plus the plain program
   variables),
2. a candidate is *usable* if it is bounded below on every remaining
   transition polyhedron and never increases on any of them,
3. a greedy loop repeatedly picks a usable candidate that strictly
   decreases at least one remaining transition, removes the transitions it
   strictly decreases, and stops when none remain (proved) or no candidate
   makes progress (unknown).

All checks are single LP optimisations over one transition polyhedron, so
the prover is very fast but — like Loopus — gives up on programs that need
genuinely relational ranking functions.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.dnf import TransitionDisjunct, expand_disjuncts
from repro.baselines.result import BaselineResult
from repro.core.lp_instance import LpStatistics
from repro.core.problem import TerminationProblem
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
)
from repro.linalg.vector import Vector
from repro.linexpr.expr import LinExpr
from repro.linexpr.transform import prime_suffix
from repro.lp.problem import LpStatus, Sense
from repro.lp.simplex import solve_lp


def _candidates(
    problem: TerminationProblem, disjuncts: Sequence[TransitionDisjunct]
) -> List[LinExpr]:
    """Candidate ranking expressions: guard left-hand sides and variables."""
    seen: Dict[Tuple, LinExpr] = {}
    program_variables = set(problem.variables)

    def add(expression: LinExpr) -> None:
        homogeneous = expression - expression.constant_term
        if not homogeneous.variables():
            return
        if not homogeneous.variables() <= program_variables:
            return
        key = tuple(sorted(homogeneous.terms.items()))
        seen.setdefault(key, homogeneous)

    for variable in problem.variables:
        add(LinExpr.variable(variable))
    for disjunct in disjuncts:
        for constraint in disjunct.constraints:
            # Stored as expr ≤ 0, i.e. (−expr) ≥ 0: the candidate is −expr.
            add(-constraint.expr)
    return list(seen.values())


def _extreme(
    expression: LinExpr,
    disjunct: TransitionDisjunct,
    sense: Sense,
) -> Optional[Fraction]:
    outcome = solve_lp(expression, disjunct.constraints, sense)
    if outcome.status is LpStatus.OPTIMAL:
        return outcome.objective
    if outcome.status is LpStatus.INFEASIBLE:
        return Fraction(0)
    return None


def _delta_expression(
    problem: TerminationProblem, candidate: LinExpr
) -> LinExpr:
    """``candidate(x) − candidate(x')`` over a transition polyhedron."""
    primed = candidate.rename(
        {name: prime_suffix(name) for name in problem.variables}
    )
    return candidate - primed


def heuristic_prover(
    problem: TerminationProblem,
    max_dimension: Optional[int] = None,
) -> BaselineResult:
    """Greedy lexicographic combination of syntactic candidates."""
    start = time.perf_counter()
    statistics = LpStatistics()
    disjuncts = expand_disjuncts(problem)
    candidates = _candidates(problem, disjuncts)
    if max_dimension is None:
        max_dimension = max(4, len(problem.variables) + 1)

    components: List[AffineRankingFunction] = []
    remaining = list(disjuncts)
    proved = not remaining

    while remaining and len(components) < max_dimension:
        progress = False
        for candidate in candidates:
            delta = _delta_expression(problem, candidate)
            lower_bounds: List[Fraction] = []
            non_increasing = True
            strictly_decreased: List[int] = []
            for index, disjunct in enumerate(remaining):
                statistics.record(len(disjunct.constraints), 2)
                decrease = _extreme(delta, disjunct, Sense.MINIMIZE)
                if decrease is None or decrease < 0:
                    non_increasing = False
                    break
                value = _extreme(candidate, disjunct, Sense.MINIMIZE)
                if value is None:
                    non_increasing = False
                    break
                lower_bounds.append(value)
                if decrease > 0:
                    strictly_decreased.append(index)
            if not non_increasing or not strictly_decreased:
                continue
            offset = -min(lower_bounds) if lower_bounds else Fraction(0)
            component = AffineRankingFunction(
                problem.variables,
                {
                    location: Vector(
                        candidate.coefficient(name)
                        for name in problem.variables
                    )
                    for location in problem.cutset
                },
                {location: offset for location in problem.cutset},
            )
            component.strict = len(strictly_decreased) == len(remaining)
            components.append(component)
            remaining = [
                disjunct
                for index, disjunct in enumerate(remaining)
                if index not in set(strictly_decreased)
            ]
            progress = True
            break
        if not progress:
            break
        if not remaining:
            proved = True

    elapsed = time.perf_counter() - start
    ranking = LexicographicRankingFunction(components) if proved else None
    return BaselineResult(
        name="heuristic (Loopus-style)",
        proved=proved,
        ranking=ranking,
        time_seconds=elapsed,
        lp_statistics=statistics,
        details={
            "disjuncts": len(disjuncts),
            "candidates": len(candidates),
            "dimension": len(components),
        },
    )
