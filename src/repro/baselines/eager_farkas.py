"""Eager Farkas-based lexicographic synthesis (Rank / ADFG style).

This is the method of Alias, Darte, Feautrier & Gonnord (SAS 2010) and of
the Rank tool the paper compares against: the transition relation is
expanded into an explicit list of transition polyhedra, and each
lexicographic component is obtained by solving **one large linear
program** whose unknowns are

* the per-location affine coefficients of the component,
* one ``δ_j ∈ [0, 1]`` per transition polyhedron (1 ⇔ that transition is
  strictly decreased and can be discarded for the next component), and
* one Farkas multiplier per constraint row of every transition polyhedron
  and of every invariant.

The LP therefore has a number of rows and columns proportional to the
*total number of constraints of all paths*, which is the quantity the
paper contrasts with Termite's counterexample-sized instances (the
"(584, 229) vs (5, 2)" comparison of §9).
"""

from __future__ import annotations

import itertools
import time
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.dnf import TransitionDisjunct, expand_disjuncts
from repro.baselines.result import BaselineResult
from repro.core.lp_instance import LpStatistics
from repro.core.problem import TerminationProblem
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
)
from repro.linalg.vector import Vector
from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.linexpr.transform import prime_suffix
from repro.lp.problem import LinearProgram, LpStatus, Sense
from repro.synthesis.engine import eliminate_lexicographic


class _FarkasSystem:
    """Builder for one lexicographic component's constraint system."""

    def __init__(self, problem: TerminationProblem, disjuncts: Sequence[TransitionDisjunct]):
        self.problem = problem
        self.disjuncts = list(disjuncts)
        self.program = LinearProgram(Sense.MAXIMIZE)
        self._fresh = itertools.count()

    # -- unknown names -----------------------------------------------------------

    def coefficient_name(self, location: str, variable: str) -> str:
        return "lam[%s][%s]" % (location, variable)

    def offset_name(self, location: str) -> str:
        return "off[%s]" % location

    def delta_name(self, index: int) -> str:
        return "delta_%d" % index

    def _multiplier(self) -> str:
        return "mu_%d" % next(self._fresh)

    # -- Farkas encoding --------------------------------------------------------------

    def require_nonnegative_combination(
        self,
        target_coefficients: Dict[str, LinExpr],
        target_constant: LinExpr,
        rows: Sequence[Constraint],
    ) -> None:
        """Require ``target ≥ 0`` over ``{y | rows}`` via Farkas' lemma.

        ``target`` is the affine function with (unknown-valued) coefficient
        ``target_coefficients[v]`` for each state variable ``v`` and
        (unknown-valued) constant ``target_constant``.  The rows are
        constraints ``expr ≤ 0`` / ``expr = 0`` over the state variables.
        Farkas: target = Σ μ_i · (−expr_i) + μ_0 with μ_i ≥ 0 (free for
        equalities) and μ_0 ≥ 0, matched coefficient by coefficient.
        """
        multipliers: List[Tuple[str, Constraint]] = []
        for row in rows:
            name = self._multiplier()
            self.program.declare(name)
            if not row.is_equality():
                self.program.add_constraint(LinExpr.variable(name) >= 0)
            multipliers.append((name, row))
        slack = self._multiplier()
        self.program.declare(slack)
        self.program.add_constraint(LinExpr.variable(slack) >= 0)

        state_variables = set()
        for _, row in multipliers:
            state_variables |= row.variables()
        state_variables |= set(target_coefficients)

        for variable in sorted(state_variables):
            combination = LinExpr()
            for name, row in multipliers:
                coefficient = -row.expr.coefficient(variable)
                if coefficient != 0:
                    combination = combination + LinExpr({name: coefficient})
            target = target_coefficients.get(variable, LinExpr())
            self.program.add_constraint((target - combination).eq(0))

        constant_combination = LinExpr.variable(slack)
        for name, row in multipliers:
            coefficient = -row.expr.constant_term
            if coefficient != 0:
                constant_combination = constant_combination + LinExpr(
                    {name: coefficient}
                )
        self.program.add_constraint((target_constant - constant_combination).eq(0))


def _ranking_coefficients(
    system: _FarkasSystem, location: str, primed: bool, negate: bool = False
) -> Tuple[Dict[str, LinExpr], LinExpr]:
    """Coefficient map of ``±ρ_k`` seen as a function of the state variables."""
    sign = -1 if negate else 1
    coefficients: Dict[str, LinExpr] = {}
    for variable in system.problem.variables:
        state_variable = prime_suffix(variable) if primed else variable
        coefficients[state_variable] = LinExpr(
            {system.coefficient_name(location, variable): sign}
        )
    constant = LinExpr({system.offset_name(location): sign})
    return coefficients, constant


def _merge_coefficients(
    left: Dict[str, LinExpr], right: Dict[str, LinExpr]
) -> Dict[str, LinExpr]:
    merged = dict(left)
    for name, expr in right.items():
        merged[name] = merged.get(name, LinExpr()) + expr
    return merged


def _synthesize_component(
    problem: TerminationProblem,
    disjuncts: Sequence[TransitionDisjunct],
    statistics: LpStatistics,
) -> Optional[Tuple[AffineRankingFunction, List[int]]]:
    """One greedy lexicographic component over the remaining disjuncts.

    Returns the component and the indices of the disjuncts it strictly
    decreases, or ``None`` when the Farkas system has no useful solution.
    """
    system = _FarkasSystem(problem, disjuncts)
    program = system.program

    for location in problem.cutset:
        program.declare(system.offset_name(location))
        for variable in problem.variables:
            program.declare(system.coefficient_name(location, variable))

    objective = LinExpr()
    for index in range(len(disjuncts)):
        delta = system.delta_name(index)
        program.declare(delta)
        program.add_constraint(LinExpr.variable(delta) >= 0)
        program.add_constraint(LinExpr.variable(delta) <= 1)
        objective = objective + LinExpr.variable(delta)
    program.objective = objective

    # Decrease (by at least δ_j) on every remaining disjunct.
    for index, disjunct in enumerate(disjuncts):
        before_coeffs, before_const = _ranking_coefficients(
            system, disjunct.source, primed=False
        )
        after_coeffs, after_const = _ranking_coefficients(
            system, disjunct.target, primed=True, negate=True
        )
        coefficients = _merge_coefficients(before_coeffs, after_coeffs)
        constant = before_const + after_const - LinExpr.variable(
            system.delta_name(index)
        )
        system.require_nonnegative_combination(
            coefficients, constant, disjunct.constraints
        )

    # Nonnegativity on the invariant of every cut point.
    for location in problem.cutset:
        coefficients, constant = _ranking_coefficients(
            system, location, primed=False
        )
        system.require_nonnegative_combination(
            coefficients, constant, problem.invariant(location).constraints
        )

    statistics.record(program.num_rows, program.num_cols)
    outcome = program.solve()
    if outcome.status is not LpStatus.OPTIMAL or outcome.objective == 0:
        return None

    coefficients: Dict[str, Vector] = {}
    offsets: Dict[str, Fraction] = {}
    for location in problem.cutset:
        coefficients[location] = Vector(
            outcome.assignment.get(
                system.coefficient_name(location, variable), Fraction(0)
            )
            for variable in problem.variables
        )
        offsets[location] = outcome.assignment.get(
            system.offset_name(location), Fraction(0)
        )
    component = AffineRankingFunction(problem.variables, coefficients, offsets)
    killed = [
        index
        for index in range(len(disjuncts))
        if outcome.assignment.get(system.delta_name(index), Fraction(0)) == 1
    ]
    component.strict = len(killed) == len(disjuncts)
    if not killed:
        return None
    return component, killed


def eager_farkas_lexicographic(
    problem: TerminationProblem,
    max_dimension: Optional[int] = None,
) -> BaselineResult:
    """Greedy multidimensional synthesis over the eagerly expanded DNF."""
    start = time.perf_counter()
    statistics = LpStatistics()
    disjuncts = expand_disjuncts(problem)
    if max_dimension is None:
        max_dimension = max(4, problem.stacked_dimension)

    # The refinement loop is the shared greedy elimination of the
    # synthesis engine; this baseline only supplies the Farkas step.
    components, _, proved = eliminate_lexicographic(
        disjuncts,
        lambda remaining: _synthesize_component(problem, remaining, statistics),
        max_dimension,
    )

    elapsed = time.perf_counter() - start
    ranking = LexicographicRankingFunction(components) if proved else None
    return BaselineResult(
        name="eager-farkas (Rank-style)",
        proved=proved,
        ranking=ranking,
        time_seconds=elapsed,
        lp_statistics=statistics,
        details={
            "disjuncts": len(disjuncts),
            "dimension": len(components),
        },
    )


def podelski_rybalchenko_via_farkas(
    problem: TerminationProblem,
) -> BaselineResult:
    """Single-component complete synthesis (Podelski & Rybalchenko 2004).

    A monodimensional linear ranking function exists iff the Farkas system
    of one component strictly decreases *every* transition polyhedron.
    """
    start = time.perf_counter()
    statistics = LpStatistics()
    disjuncts = expand_disjuncts(problem)
    proved = not disjuncts
    ranking = None
    if disjuncts:
        outcome = _synthesize_component(problem, disjuncts, statistics)
        if outcome is not None:
            component, killed = outcome
            if len(killed) == len(disjuncts):
                proved = True
                ranking = LexicographicRankingFunction([component])
    elapsed = time.perf_counter() - start
    return BaselineResult(
        name="podelski-rybalchenko",
        proved=proved,
        ranking=ranking,
        time_seconds=elapsed,
        lp_statistics=statistics,
        details={"disjuncts": len(disjuncts)},
    )
