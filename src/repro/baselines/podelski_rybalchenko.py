"""The complete monodimensional synthesis of Podelski & Rybalchenko (2004).

A single linear ranking function (one affine map per cut point, strictly
decreasing on *every* transition polyhedron and nonnegative on the
invariants) either exists — and the Farkas-based LP finds it — or it does
not, in which case the method reports failure.  It is strictly weaker than
the lexicographic provers (it cannot prove, e.g., nested loops with
unrelated counters) and serves as the classical completeness baseline.
"""

from __future__ import annotations

from repro.baselines.eager_farkas import podelski_rybalchenko_via_farkas
from repro.baselines.result import BaselineResult
from repro.core.problem import TerminationProblem


def podelski_rybalchenko(problem: TerminationProblem) -> BaselineResult:
    """Synthesise a single linear ranking function, if one exists."""
    return podelski_rybalchenko_via_farkas(problem)
