"""Eager expansion of a termination problem into transition polyhedra.

The baselines (Rank-style Farkas synthesis, Ben-Amram & Genaim-style
generator enumeration, Podelski–Rybalchenko) all need the transition
relation as an explicit list of convex polyhedra — the disjunctive normal
form the paper's lazy algorithm avoids computing.  This module performs
that expansion once so the baselines share it.

Each disjunct keeps its auxiliary (intermediate copy / havoc) variables:
Farkas reasoning and generator projection are both exact over the lifted
space, so no quantifier elimination is required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.problem import TerminationProblem
from repro.linexpr.constraint import Constraint
from repro.linexpr.transform import dnf_conjunctions
from repro.smt.theory import check_conjunction


@dataclass
class TransitionDisjunct:
    """One path polyhedron of the eager expansion."""

    source: str
    target: str
    constraints: List[Constraint]

    def variables(self) -> List[str]:
        names = set()
        for constraint in self.constraints:
            names |= constraint.variables()
        return sorted(names)


def expand_disjuncts(
    problem: TerminationProblem,
    prune_infeasible: bool = True,
) -> List[TransitionDisjunct]:
    """All path polyhedra ``I_source ∧ path`` of the problem's blocks.

    Every strict inequality over integer variables is tightened; remaining
    strict inequalities are relaxed to their closures (the baselines work
    with closed polyhedra, as in the original publications).  Disjuncts
    whose constraint set is infeasible are dropped when *prune_infeasible*
    is set (they correspond to syntactically present but semantically dead
    paths).
    """
    integer_variables = problem.smt_integer_variables()
    disjuncts: List[TransitionDisjunct] = []
    for block in problem.blocks:
        invariant = problem.invariant(block.source).constraints
        for conjunct in dnf_conjunctions(block.formula):
            rows: List[Constraint] = []
            for constraint in list(invariant) + list(conjunct):
                if constraint.is_strict():
                    if constraint.variables() <= integer_variables:
                        constraint = constraint.tighten_for_integers()
                    constraint = constraint.weaken()
                rows.append(constraint)
            if prune_infeasible:
                outcome = check_conjunction(rows, minimize_core=False)
                if not outcome.satisfiable:
                    continue
            disjuncts.append(
                TransitionDisjunct(block.source, block.target, rows)
            )
    return disjuncts
