"""Baseline termination provers used by the evaluation.

The paper's Table 1 compares Termite with external tools (Loopus, AProVE,
Ultimate Büchi Automizer, Rank/iRankFinder).  Those tools cannot be run in
this offline reproduction; instead the package implements the *methods*
they are built on, so the evaluation can compare the lazy
counterexample-guided construction against its eager and heuristic
competitors on identical inputs:

* :mod:`repro.baselines.podelski_rybalchenko` — the complete synthesis of
  (monodimensional) linear ranking functions of Podelski & Rybalchenko
  (VMCAI 2004), applied per transition polyhedron.
* :mod:`repro.baselines.eager_farkas` — eager lexicographic synthesis à la
  Alias–Darte–Feautrier–Gonnord (Rank): the transition relation is expanded
  into disjunctive normal form and one big Farkas constraint system is
  solved per lexicographic component.  Its LP sizes are the ones the paper
  contrasts with Termite's.
* :mod:`repro.baselines.eager_generators` — the generator-enumeration
  approach of Ben-Amram & Genaim (JACM 2014): every disjunct's vertices and
  rays are computed eagerly with the double-description method and a single
  ``LP(V, Constraints(I))`` instance is solved.
* :mod:`repro.baselines.heuristic` — a Loopus-style syntactic prover that
  guesses candidate ranking expressions from the guards and checks them.
* :mod:`repro.baselines.dnf_prover` — greedy per-disjunct lexicographic
  elimination over the eager DNF expansion (Bradley–Manna–Sipma-style
  one-by-one synthesis): many small Farkas LPs instead of one global one.

All five consume the same :class:`~repro.core.problem.TerminationProblem`
(or a control-flow automaton) and report results in the same shape as the
main prover, including LP-size statistics.
"""

from repro.baselines.result import BaselineResult
from repro.baselines.podelski_rybalchenko import podelski_rybalchenko
from repro.baselines.eager_farkas import eager_farkas_lexicographic
from repro.baselines.eager_generators import eager_generator_synthesis
from repro.baselines.heuristic import heuristic_prover
from repro.baselines.dnf_prover import dnf_prover

__all__ = [
    "BaselineResult",
    "podelski_rybalchenko",
    "eager_farkas_lexicographic",
    "eager_generator_synthesis",
    "heuristic_prover",
    "dnf_prover",
]
