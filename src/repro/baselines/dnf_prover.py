"""Per-disjunct greedy synthesis over the eager DNF expansion.

The fifth baseline: where the eager Farkas construction (Rank/ADFG style,
:mod:`repro.baselines.eager_farkas`) finds each lexicographic component by
solving **one global LP** that maximises the number of strictly-decreased
disjuncts at once, this prover works *one path polyhedron at a time* — the
classic one-by-one elimination of Bradley–Manna–Sipma-style lexicographic
synthesis:

1. expand the transition relation into disjunctive normal form (the
   shared :func:`~repro.baselines.dnf.expand_disjuncts`),
2. look for a disjunct ``d`` admitting an affine function that is
   *bounded below* on the invariants, *strictly decreasing* on ``d`` and
   *non-increasing* on every other remaining disjunct (one small Farkas
   feasibility LP per candidate),
3. make that function the next lexicographic component, discard ``d``,
   repeat until no disjunct remains (proved) or no disjunct can be
   eliminated (unknown).

Soundness: each component never increases on the disjuncts that remain
when it is chosen and strictly decreases (while bounded) on the
eliminated one, so the tuple is a genuine lexicographic linear ranking
function.  The trade-off against the global construction is many small
LPs (and a potentially inflated dimension — one component per disjunct in
the worst case) instead of few large ones, which is exactly the axis the
paper's Table 1 measures.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Optional, Sequence

from repro.baselines.dnf import TransitionDisjunct, expand_disjuncts
from repro.baselines.eager_farkas import (
    _FarkasSystem,
    _merge_coefficients,
    _ranking_coefficients,
)
from repro.baselines.result import BaselineResult
from repro.core.lp_instance import LpStatistics
from repro.core.problem import TerminationProblem
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
)
from repro.linalg.vector import Vector
from repro.lp.problem import LpStatus
from repro.synthesis.engine import eliminate_lexicographic


def _eliminate_disjunct(
    problem: TerminationProblem,
    remaining: Sequence[TransitionDisjunct],
    target: int,
    statistics: LpStatistics,
) -> Optional[AffineRankingFunction]:
    """One Farkas feasibility LP: kill disjunct *target*, respect the rest.

    Returns the component, or ``None`` when no affine function strictly
    decreases *target* (by ≥ 1, w.l.o.g. for rational rankings) while
    staying non-increasing on the other remaining disjuncts and
    nonnegative on the invariants.
    """
    system = _FarkasSystem(problem, remaining)
    program = system.program

    for location in problem.cutset:
        program.declare(system.offset_name(location))
        for variable in problem.variables:
            program.declare(system.coefficient_name(location, variable))

    for index, disjunct in enumerate(remaining):
        before_coeffs, before_const = _ranking_coefficients(
            system, disjunct.source, primed=False
        )
        after_coeffs, after_const = _ranking_coefficients(
            system, disjunct.target, primed=True, negate=True
        )
        coefficients = _merge_coefficients(before_coeffs, after_coeffs)
        constant = before_const + after_const
        if index == target:
            constant = constant - 1  # strict decrease on the eliminated path
        system.require_nonnegative_combination(
            coefficients, constant, disjunct.constraints
        )

    for location in problem.cutset:
        coefficients, constant = _ranking_coefficients(
            system, location, primed=False
        )
        system.require_nonnegative_combination(
            coefficients, constant, problem.invariant(location).constraints
        )

    statistics.record(program.num_rows, program.num_cols)
    outcome = program.solve()
    statistics.record_solve(outcome.pivots, warm=False)
    if outcome.status is not LpStatus.OPTIMAL:
        return None

    coefficients_by_location = {}
    offsets = {}
    for location in problem.cutset:
        coefficients_by_location[location] = Vector(
            outcome.assignment.get(
                system.coefficient_name(location, variable), Fraction(0)
            )
            for variable in problem.variables
        )
        offsets[location] = outcome.assignment.get(
            system.offset_name(location), Fraction(0)
        )
    component = AffineRankingFunction(
        problem.variables, coefficients_by_location, offsets
    )
    component.strict = len(remaining) == 1
    return component


def dnf_prover(
    problem: TerminationProblem,
    max_dimension: Optional[int] = None,
) -> BaselineResult:
    """Greedy per-disjunct lexicographic synthesis over the eager DNF.

    The elimination loop is the shared
    :func:`repro.synthesis.engine.eliminate_lexicographic`; this prover
    only supplies the "find one eliminable disjunct" step.
    """
    start = time.perf_counter()
    statistics = LpStatistics()
    disjuncts = expand_disjuncts(problem)
    if max_dimension is None:
        max_dimension = max(4, len(disjuncts))

    def find_component(remaining):
        for index in range(len(remaining)):
            component = _eliminate_disjunct(problem, remaining, index, statistics)
            if component is not None:
                return component, [index]
        return None

    components, _, proved = eliminate_lexicographic(
        disjuncts, find_component, max_dimension
    )

    elapsed = time.perf_counter() - start
    ranking = LexicographicRankingFunction(components) if proved else None
    return BaselineResult(
        name="dnf (per-disjunct greedy)",
        proved=proved,
        ranking=ranking,
        time_seconds=elapsed,
        lp_statistics=statistics,
        details={
            "disjuncts": len(disjuncts),
            "dimension": len(components),
        },
    )
