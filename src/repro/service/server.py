"""The two front doors of the analysis service.

``repro serve --stdio`` wires :class:`~repro.service.protocol.
ServiceProtocol` straight to stdin/stdout with an :class:`InlineExecutor`
— one process, no pool, ideal for editor integrations and pipes.

``repro serve --port N`` runs :class:`ServiceServer`: an asyncio socket
server accepting newline-delimited JSON-RPC over TCP.  Requests dispatch
onto a **pre-forked** :class:`~repro.reporting.parallel.WorkerPool`
(forked after the prover registry and interned constraints are resident,
so a request pays the analysis alone), with per-request wall-clock
timeouts, crash isolation with automatic respawn, and graceful drain on
SIGTERM/SIGINT or the ``shutdown`` method: the listener closes first,
queued admissions are refused with ``SHUTTING_DOWN``, in-flight requests
finish (bounded by a grace period), then the pool is torn down.

Overload hardening (see :mod:`repro.service.admission`): every compute
passes the **admission gate** (``--max-inflight`` / ``--max-queue``) —
load beyond both bounds is shed with ``OVERLOADED`` (-32005) carrying
``retry_after_seconds``; under pressure, requests are **degraded**
(``nonterm=auto`` races dropped to termination-only, non-default kernels
forced back to ``auto``), with every trade stamped into
``provenance.degraded``.  A per-tool **circuit breaker** fails fast
after repeated worker crashes instead of burning the pool's respawn
budget.

Both doors share one :class:`~repro.service.cache.ResultCache` front:
the parent process answers duplicate requests from the content-addressed
cache — after the independent checker re-validates the certificate —
without ever touching a worker.  With ``--cache-dir`` the cache persists
across restarts (atomically written, checksummed, checker-revalidated on
load), so even a ``kill -9`` costs only the entries in flight.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set, Tuple

from repro.api.pipeline import analyze
from repro.api.request import AnalysisRequest
from repro.api.result import AnalysisResult, AnalysisStatus, Provenance
from repro.reporting.parallel import WorkerPool, run_tasks
from repro.service.admission import (
    AdmissionGate,
    CircuitBreaker,
    Overloaded,
    ShuttingDown,
)
from repro.service.cache import (
    DEFAULT_MAX_DISK_BYTES,
    DEFAULT_MAX_ENTRIES,
    ResultCache,
)
from repro.service.faults import INERT_INJECTOR, FaultInjector, FaultPlan
from repro.service.protocol import (
    ANALYSIS_ERROR,
    DEFAULT_MAX_PROGRAM_BYTES,
    OVERLOADED,
    PARSE_ERROR,
    REQUEST_TIMEOUT,
    SHUTTING_DOWN,
    WORKER_CRASH,
    ProtocolError,
    ServiceProtocol,
    error_response,
)

#: Extra seconds granted to in-flight requests during a graceful drain.
DRAIN_GRACE_SECONDS = 30.0

#: The hung-worker watchdog: even with no ``--timeout``, a worker holding
#: one request longer than this is SIGKILLed and its lease reclaimed.
DEFAULT_HUNG_DEADLINE_SECONDS = 300.0

#: Chunk size of the manual line framer.
_READ_CHUNK = 1 << 16


def _analyze_request_document(document: dict) -> dict:
    """The pool worker entry point: one request document in, one
    ``{"result": ..., "pid": ...}`` envelope out.

    Must stay module-level (it crosses the fork/spawn boundary) and must
    never raise for an analysis-level failure — those come back as
    ``status="error"`` results; only a genuine process death is a crash.

    Fault-injection markers (stamped by
    :meth:`repro.service.faults.FaultInjector.annotate_worker_message`)
    are honoured *before* the request parses: a ``kill`` marker dies
    mid-request the way a segfault would, a ``delay`` marker wedges the
    worker past its deadline the way an SMT loop would.
    """
    if "__fault__" in document:
        document = dict(document)
        fault = document.pop("__fault__", None)
        delay = document.pop("__fault_delay__", 0.0)
        if fault == "kill":
            os._exit(23)
        elif fault == "delay":
            time.sleep(float(delay))
    try:
        request = AnalysisRequest.from_dict(document)
        result = analyze(request)
    except Exception as error:
        result = AnalysisResult(
            tool=str(document.get("tool", "termite")),
            program=str(document.get("name", "program")),
            status=AnalysisStatus.ERROR,
            error="%s: %s" % (type(error).__name__, error),
        )
    return {"result": result.to_dict(), "pid": os.getpid()}


def degrade_request(request: AnalysisRequest) -> Tuple[AnalysisRequest, tuple]:
    """The load-shedding degradation tier: trade precision for slots.

    Under pressure the expensive halves of a request are dropped —
    the ``nonterm="auto"`` two-thread race becomes termination-only and
    a pinned non-default kernel falls back to ``auto`` — and each trade
    is named in the returned tuple so the executor can stamp it into
    ``provenance.degraded``.  A request with nothing to shed comes back
    unchanged with an empty tuple.
    """
    config = request.config
    changes = {}
    degradations = []
    if config.nonterm == "auto":
        changes["nonterm"] = "off"
        degradations.append("nonterm:auto->off")
    if config.kernel != "auto":
        changes["kernel"] = "auto"
        degradations.append("kernel:%s->auto" % config.kernel)
    if not changes:
        return request, ()
    degraded_config = dataclasses.replace(config, **changes)
    return request.replace(config=degraded_config), tuple(degradations)


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class _CachingExecutor:
    """The shared service spine: cache → breaker → gate → compute → store.

    The admission gate and circuit breaker guard *compute* only — a
    cache hit costs one checker pass on an already-bounded thread pool
    and is exactly the traffic an overloaded service wants to keep
    serving.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        gate: Optional[AdmissionGate] = None,
        breaker: Optional[CircuitBreaker] = None,
        timeout: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.cache = cache
        self.gate = gate
        self.breaker = breaker
        self.timeout = timeout
        self.faults = faults if faults is not None else INERT_INJECTOR
        # Which LP kernel served each computed payload, plus the total
        # overflow fallbacks those payloads reported (cache hits replay
        # the original compute and are not re-counted here).
        self._kernel_lock = threading.Lock()
        self._kernel_tally: dict = {"overflow_fallbacks": 0}

    #: Width of the analyze_batch fan-out (1 = in-order).
    @property
    def fanout(self) -> int:
        return 1

    def effective_timeout(self, request: AnalysisRequest) -> Optional[float]:
        """The tighter of the server budget and the caller's deadline.

        A caller may only shrink the budget; ``deadline_seconds`` beyond
        the server's ``--timeout`` is capped, never honoured upward.
        """
        deadline = request.deadline_seconds
        if deadline is None:
            return self.timeout
        if self.timeout is None:
            return deadline
        return min(self.timeout, deadline)

    def run(self, request: AnalysisRequest) -> AnalysisResult:
        if self.cache is not None:
            hit = self.cache.lookup(request)
            if hit is not None:
                # The cached payload carries the *first* requester's
                # program name; serve it under the current caller's.
                hit.program = request.name
                return hit
        if self.breaker is not None:
            try:
                self.breaker.check(request.tool)
            except Overloaded as error:
                raise ProtocolError(
                    OVERLOADED,
                    str(error),
                    data={"retry_after_seconds": error.retry_after_seconds},
                ) from None
        # check() may have granted this request the half-open probe; any
        # exit that never reaches a record_* call below must release it
        # (record_neutral) or the tool stays "probe in flight" forever.
        settled = self.breaker is None
        try:
            ticket = None
            if self.gate is not None:
                try:
                    ticket = self.gate.admit()
                except Overloaded as error:
                    raise ProtocolError(
                        OVERLOADED,
                        str(error),
                        data={"retry_after_seconds": error.retry_after_seconds},
                    ) from None
                except ShuttingDown:
                    raise ProtocolError(
                        SHUTTING_DOWN, "service is shutting down"
                    ) from None
            try:
                if (
                    ticket is not None
                    and ticket.waited
                    and self.cache is not None
                ):
                    # We may have queued a while: a duplicate request could
                    # have computed and stored meanwhile.  One more lookup
                    # here turns a whole burst of identical requests into
                    # one compute plus hits.
                    hit = self.cache.lookup(request)
                    if hit is not None:
                        hit.program = request.name
                        return hit
                effective, degradations = request, ()
                if self.gate is not None and self.gate.pressure_tier() >= 1:
                    effective, degradations = degrade_request(request)
                    if degradations:
                        self.gate.note_degraded()
                        if self.cache is not None:
                            hit = self.cache.lookup(effective)
                            if hit is not None:
                                hit.program = request.name
                                hit.provenance.degraded = degradations
                                return hit
                try:
                    result, pid = self._compute(effective)
                except ProtocolError as error:
                    if self.breaker is not None:
                        if error.code == WORKER_CRASH:
                            self.breaker.record_crash(request.tool)
                        elif error.code == ANALYSIS_ERROR:
                            # The worker answered: it is healthy.
                            self.breaker.record_success(request.tool)
                        else:
                            self.breaker.record_neutral(request.tool)
                        settled = True
                    raise
                if self.breaker is not None:
                    self.breaker.record_success(request.tool)
                    settled = True
                # Store *before* releasing the ticket: a queued duplicate
                # woken by the release must find the entry already there.
                disposition = "bypass"
                if self.cache is not None:
                    self.cache.store(effective, result)
                    disposition = "miss"
            finally:
                if ticket is not None:
                    ticket.release()
        finally:
            if not settled:
                self.breaker.record_neutral(request.tool)
        kernel = result.lp_statistics.kernel_chosen
        result.provenance = Provenance(
            cache=disposition,
            key=effective.cache_key(),
            revalidated=False,
            worker_pid=pid,
            degraded=degradations,
            kernel=kernel,
        )
        with self._kernel_lock:
            label = kernel or "none"
            self._kernel_tally[label] = self._kernel_tally.get(label, 0) + 1
            self._kernel_tally["overflow_fallbacks"] += (
                result.lp_statistics.overflow_fallbacks
            )
        return result

    def _compute(self, request: AnalysisRequest) -> Tuple[AnalysisResult, int]:
        raise NotImplementedError

    def begin_drain(self) -> None:
        """Refuse queued and future admissions; in-flight work finishes."""
        if self.gate is not None:
            self.gate.close()

    def cache_stats(self) -> dict:
        document = {
            "enabled": self.cache is not None,
            "stats": self.cache.stats().to_dict()
            if self.cache is not None
            else None,
        }
        if self.gate is not None:
            document["admission"] = self.gate.stats()
        if self.breaker is not None:
            document["breaker"] = self.breaker.stats()
        with self._kernel_lock:
            document["kernels"] = dict(self._kernel_tally)
        if self.faults.active:
            document["faults"] = self.faults.log.to_dict()
        return document

    def shutdown(self) -> None:
        pass


def _envelope_to_result(
    envelope, budget: Optional[float], pool_capacity: Optional[int] = None
) -> Tuple[AnalysisResult, int]:
    """Translate a pool/one-shot :class:`TaskResult` into a result or a
    :class:`ProtocolError` (shared by both executors)."""
    if envelope.kind == "timeout":
        raise ProtocolError(
            REQUEST_TIMEOUT,
            envelope.message
            or "request exceeded its %.1fs budget (worker killed and "
            "respawned)" % (budget or 0.0),
            data={"elapsed": round(envelope.elapsed, 3)},
        )
    if envelope.kind == "crash":
        if pool_capacity == 0:
            raise ProtocolError(
                OVERLOADED,
                "worker pool exhausted its respawn budget: %s"
                % envelope.message,
                data={"retry_after_seconds": 30.0},
            )
        raise ProtocolError(
            WORKER_CRASH,
            "worker crashed mid-request (respawned): %s" % envelope.message,
        )
    if envelope.kind != "ok":
        raise ProtocolError(ANALYSIS_ERROR, envelope.message or "analysis failed")
    payload = envelope.value
    result = AnalysisResult.from_dict(payload["result"])
    if result.status is AnalysisStatus.ERROR:
        raise ProtocolError(ANALYSIS_ERROR, result.error or "analysis failed")
    return result, payload["pid"]


class InlineExecutor(_CachingExecutor):
    """Run analyses in the serving process (the stdio front door).

    A request carrying ``deadline_seconds`` (or a server ``timeout``)
    runs in a disposable one-shot worker process instead, so the budget
    is enforced with a real kill — the inline door has no resident pool
    to lease from, but it honours deadlines all the same.
    """

    def _compute(self, request: AnalysisRequest) -> Tuple[AnalysisResult, int]:
        budget = self.effective_timeout(request)
        if budget is not None:
            envelope = run_tasks(
                [functools.partial(_analyze_request_document, request.to_dict())],
                jobs=1,
                timeout=budget,
            )[0]
            return _envelope_to_result(envelope, budget)
        try:
            result = analyze(request)
        except Exception as error:
            raise ProtocolError(
                ANALYSIS_ERROR,
                "analysis failed: %s: %s" % (type(error).__name__, error),
            ) from None
        if result.status is AnalysisStatus.ERROR:
            raise ProtocolError(
                ANALYSIS_ERROR, result.error or "analysis failed"
            )
        return result, os.getpid()


class PoolExecutor(_CachingExecutor):
    """Dispatch analyses onto the pre-forked crash-isolated worker pool."""

    def __init__(
        self,
        jobs: int = 2,
        timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        gate: Optional[AdmissionGate] = None,
        breaker: Optional[CircuitBreaker] = None,
        faults: Optional[FaultInjector] = None,
        respawn_budget: int = 32,
        hung_deadline: Optional[float] = DEFAULT_HUNG_DEADLINE_SECONDS,
    ):
        super().__init__(
            cache=cache, gate=gate, breaker=breaker, timeout=timeout,
            faults=faults,
        )
        self.pool = WorkerPool(
            _analyze_request_document,
            jobs=jobs,
            respawn_budget=respawn_budget,
            hung_deadline=hung_deadline,
        )

    @property
    def fanout(self) -> int:
        # Batch members may fill every compute slot and the whole
        # admission queue, but not shed against themselves beyond that.
        if self.gate is not None:
            return max(1, min(32, self.gate.max_inflight + self.gate.max_queue))
        return max(1, self.pool.jobs)

    def _compute(self, request: AnalysisRequest) -> Tuple[AnalysisResult, int]:
        document = self.faults.annotate_worker_message(request.to_dict())
        budget = self.effective_timeout(request)
        envelope = self.pool.submit(document, timeout=budget)
        return _envelope_to_result(
            envelope, budget, pool_capacity=self.pool.capacity()
        )

    def cache_stats(self) -> dict:
        document = super().cache_stats()
        document["pool"] = self.pool.stats()
        return document

    def shutdown(self) -> None:
        self.pool.shutdown()


# ---------------------------------------------------------------------------
# the stdio front door
# ---------------------------------------------------------------------------


class AnalysisService:
    """Protocol + executor, bundled for embedding (tests, stdio, bench)."""

    def __init__(
        self,
        executor: Optional[_CachingExecutor] = None,
        max_program_bytes: int = DEFAULT_MAX_PROGRAM_BYTES,
    ):
        self.executor = executor if executor is not None else InlineExecutor(
            cache=ResultCache()
        )
        self.protocol = ServiceProtocol(
            self.executor, max_program_bytes=max_program_bytes
        )

    def handle_line(self, line) -> Optional[str]:
        return self.protocol.handle_line(line)

    @property
    def shutdown_requested(self) -> bool:
        return self.protocol.shutdown_requested

    def close(self) -> None:
        self.executor.shutdown()


def serve_stdio(
    input_stream=None,
    output_stream=None,
    cache: bool = True,
    cache_entries: int = DEFAULT_MAX_ENTRIES,
    revalidate: bool = True,
    max_program_bytes: int = DEFAULT_MAX_PROGRAM_BYTES,
    timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
    cache_disk_bytes: int = DEFAULT_MAX_DISK_BYTES,
) -> int:
    """Speak the protocol over stdin/stdout until EOF or ``shutdown``."""
    stdin = input_stream if input_stream is not None else sys.stdin
    stdout = output_stream if output_stream is not None else sys.stdout
    service = AnalysisService(
        InlineExecutor(
            cache=ResultCache(
                cache_entries,
                revalidate=revalidate,
                cache_dir=cache_dir,
                max_disk_bytes=cache_disk_bytes,
            )
            if cache
            else None,
            timeout=timeout,
        ),
        max_program_bytes=max_program_bytes,
    )
    try:
        for line in stdin:
            response = service.handle_line(line)
            if response is not None:
                stdout.write(response + "\n")
                stdout.flush()
            if service.shutdown_requested:
                break
    finally:
        service.close()
    return 0


# ---------------------------------------------------------------------------
# the asyncio socket front door
# ---------------------------------------------------------------------------


class _LineFramer:
    """Newline framing with a hard per-line cap and oversized recovery.

    ``readline`` returns ``(line, oversized)``: a complete line (without
    its newline), or ``line=None`` at EOF.  A line beyond *max_bytes* is
    reported as ``oversized=True`` with its bytes discarded — crucially,
    the scan continues to the terminating newline first, so the **next**
    line on the same connection frames correctly and the connection
    keeps serving (the transport never conflates "one bad request" with
    "a lost client").
    """

    def __init__(self, reader: asyncio.StreamReader, max_bytes: int):
        self._reader = reader
        self.max_bytes = int(max_bytes)
        self._buffer = bytearray()

    async def readline(self) -> Tuple[Optional[bytes], bool]:
        while True:
            index = self._buffer.find(b"\n")
            if index >= 0:
                line = bytes(self._buffer[:index])
                del self._buffer[: index + 1]
                if len(line) > self.max_bytes:
                    return b"", True
                return line, False
            if len(self._buffer) > self.max_bytes:
                # Oversized with no newline yet: drop what we have and
                # scan forward to the next newline to recover framing.
                self._buffer.clear()
                found = await self._scan_to_newline()
                return (b"", True) if found else (None, True)
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                if self._buffer:
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    if len(line) > self.max_bytes:
                        return b"", True
                    return line, False
                return None, False
            self._buffer.extend(chunk)

    async def _scan_to_newline(self) -> bool:
        while True:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                return False
            index = chunk.find(b"\n")
            if index >= 0:
                self._buffer.extend(chunk[index + 1 :])
                return True


class ServiceServer:
    """Newline-delimited JSON-RPC over TCP, onto the pre-forked pool.

    Lifecycle: :meth:`start` binds (``port=0`` picks a free port and
    updates :attr:`port`), :meth:`serve_forever` runs until a stop is
    requested — by SIGTERM/SIGINT, the protocol's ``shutdown`` method, or
    :meth:`request_stop` — then drains: stop accepting, refuse queued
    admissions with ``SHUTTING_DOWN``, let in-flight connections finish
    (bounded by a grace period), shut the pool down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 2,
        timeout: Optional[float] = None,
        cache: bool = True,
        cache_entries: int = DEFAULT_MAX_ENTRIES,
        revalidate: bool = True,
        max_program_bytes: int = DEFAULT_MAX_PROGRAM_BYTES,
        max_inflight: Optional[int] = None,
        max_queue: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache_disk_bytes: int = DEFAULT_MAX_DISK_BYTES,
        fault_plan=None,
        drain_grace: float = DRAIN_GRACE_SECONDS,
        respawn_budget: int = 32,
        hung_deadline: Optional[float] = DEFAULT_HUNG_DEADLINE_SECONDS,
    ):
        self.host = host
        self.port = port
        self.max_program_bytes = int(max_program_bytes)
        self.drain_grace = float(drain_grace)
        if isinstance(fault_plan, str) or fault_plan is None:
            fault_plan = FaultPlan.parse(fault_plan)
        self.faults = FaultInjector(fault_plan)
        jobs = max(1, int(jobs))
        gate = AdmissionGate(
            max_inflight=jobs if max_inflight is None else max_inflight,
            max_queue=4 * jobs if max_queue is None else max_queue,
        )
        self.executor = PoolExecutor(
            jobs=jobs,
            timeout=timeout,
            cache=ResultCache(
                cache_entries,
                revalidate=revalidate,
                cache_dir=cache_dir,
                max_disk_bytes=cache_disk_bytes,
                fault_injector=self.faults,
            )
            if cache
            else None,
            gate=gate,
            breaker=CircuitBreaker(),
            faults=self.faults,
            respawn_budget=respawn_budget,
            hung_deadline=hung_deadline,
        )
        self.protocol = ServiceProtocol(
            self.executor, max_program_bytes=self.max_program_bytes
        )
        # handle_line blocks (cache revalidation, waiting on a worker
        # pipe, queueing at the admission gate); it runs on this thread
        # pool so the event loop never does.  Sized to the gate: enough
        # threads that a full compute line plus queue never starves the
        # cheap methods.
        self._threads = ThreadPoolExecutor(
            max_workers=max(4, gate.max_inflight + gate.max_queue + 2),
            thread_name_prefix="repro-serve",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: Set[asyncio.Task] = set()
        # Connections with a request in flight; only these get the drain
        # grace — idle connections (parked in readline) cancel instantly.
        self._busy: Set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> int:
        """Bind the listener; returns (and records) the bound port."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def request_stop(self) -> None:
        """Begin a graceful drain (safe to call from any thread)."""
        if self._loop is None or self._stop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # the loop already finished draining — stop is a no-op

    async def serve_forever(self) -> None:
        """Serve until a stop is requested, then drain and tear down."""
        assert self._server is not None and self._stop is not None
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        try:
            await self._stop.wait()
        finally:
            for signum in installed:
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            # Late arrivals on still-open connections get SHUTTING_DOWN,
            # and admissions queued at the gate are woken and refused.
            self.protocol.shutdown_requested = True
            self.executor.begin_drain()
            self._server.close()
            await self._server.wait_closed()
            for task in list(self._connections):
                if task not in self._busy:
                    task.cancel()
            if self._connections:
                done, pending = await asyncio.wait(
                    list(self._connections), timeout=self.drain_grace
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            self.executor.shutdown()
            self._threads.shutdown(wait=False)

    async def run(self) -> int:
        """``start()`` + ``serve_forever()`` in one call; returns the port
        it served on (mostly for symmetry with :func:`serve_stdio`)."""
        port = await self.start()
        await self.serve_forever()
        return port

    # -- per-connection loop -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        loop = asyncio.get_running_loop()
        # A request line holds the JSON-escaped program plus envelope.
        framer = _LineFramer(
            reader, 2 * self.max_program_bytes + (1 << 16)
        )
        try:
            while True:
                line, oversized = await framer.readline()
                if oversized:
                    payload = json.dumps(
                        error_response(
                            None,
                            PARSE_ERROR,
                            "request line exceeds the %d-byte frame limit; "
                            "the line was discarded" % framer.max_bytes,
                        )
                    )
                    writer.write(payload.encode("utf-8") + b"\n")
                    await writer.drain()
                    if line is None:
                        break
                    continue
                if line is None:
                    break
                if not line.strip():
                    continue
                if task is not None:
                    self._busy.add(task)
                try:
                    response = await loop.run_in_executor(
                        self._threads, self.protocol.handle_line, line
                    )
                    if response is not None:
                        data = response.encode("utf-8") + b"\n"
                        if self.faults.decide("drop_connection"):
                            # Chaos: cut the response off mid-line and
                            # hang up — the client must survive this.
                            writer.write(data[: max(1, len(data) // 2)])
                            await writer.drain()
                            break
                        writer.write(data)
                        await writer.drain()
                finally:
                    if task is not None:
                        self._busy.discard(task)
                if self.protocol.shutdown_requested or self._stop.is_set():
                    self._stop.set()
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._busy.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# embedding helper (tests and the service bench)
# ---------------------------------------------------------------------------


class RunningServer:
    """A :class:`ServiceServer` running on a daemon thread."""

    def __init__(self, server: ServiceServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def cache_stats(self) -> dict:
        return self.server.executor.cache_stats()

    def stop(self, join_timeout: float = 60.0) -> None:
        self.server.request_stop()
        self.thread.join(join_timeout)

    def __enter__(self) -> "RunningServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_server_in_thread(**kwargs) -> RunningServer:
    """Start a :class:`ServiceServer` on a background thread.

    Returns once the listener is bound (so ``.port`` is final).  The
    caller stops it with :meth:`RunningServer.stop` (or ``with``).
    """
    server = ServiceServer(**kwargs)
    started = threading.Event()
    failure = []

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            try:
                await server.start()
            finally:
                started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(_main())
        except Exception as error:  # surfaced via `failure` below
            failure.append(error)
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=60.0):
        raise RuntimeError("service did not start within 60s")
    if failure:
        raise RuntimeError("service failed to start: %s" % failure[0])
    return RunningServer(server, thread)
