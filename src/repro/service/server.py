"""The two front doors of the analysis service.

``repro serve --stdio`` wires :class:`~repro.service.protocol.
ServiceProtocol` straight to stdin/stdout with an :class:`InlineExecutor`
— one process, no pool, ideal for editor integrations and pipes.

``repro serve --port N`` runs :class:`ServiceServer`: an asyncio socket
server accepting newline-delimited JSON-RPC over TCP.  Requests dispatch
onto a **pre-forked** :class:`~repro.reporting.parallel.WorkerPool`
(forked after the prover registry and interned constraints are resident,
so a request pays the analysis alone), with per-request wall-clock
timeouts, crash isolation with automatic respawn, and graceful drain on
SIGTERM/SIGINT or the ``shutdown`` method: the listener closes first,
in-flight requests finish (bounded by a grace period), then the pool is
torn down.

Both doors share one :class:`~repro.service.cache.ResultCache` front:
the parent process answers duplicate requests from the content-addressed
cache — after the independent checker re-validates the certificate —
without ever touching a worker.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set, Tuple

from repro.api.pipeline import analyze
from repro.api.request import AnalysisRequest
from repro.api.result import AnalysisResult, AnalysisStatus, Provenance
from repro.reporting.parallel import WorkerPool
from repro.service.cache import DEFAULT_MAX_ENTRIES, ResultCache
from repro.service.protocol import (
    ANALYSIS_ERROR,
    DEFAULT_MAX_PROGRAM_BYTES,
    PARSE_ERROR,
    REQUEST_TIMEOUT,
    WORKER_CRASH,
    ProtocolError,
    ServiceProtocol,
    error_response,
)

#: Extra seconds granted to in-flight requests during a graceful drain.
DRAIN_GRACE_SECONDS = 30.0


def _analyze_request_document(document: dict) -> dict:
    """The pool worker entry point: one request document in, one
    ``{"result": ..., "pid": ...}`` envelope out.

    Must stay module-level (it crosses the fork/spawn boundary) and must
    never raise for an analysis-level failure — those come back as
    ``status="error"`` results; only a genuine process death is a crash.
    """
    try:
        request = AnalysisRequest.from_dict(document)
        result = analyze(request)
    except Exception as error:
        result = AnalysisResult(
            tool=str(document.get("tool", "termite")),
            program=str(document.get("name", "program")),
            status=AnalysisStatus.ERROR,
            error="%s: %s" % (type(error).__name__, error),
        )
    return {"result": result.to_dict(), "pid": os.getpid()}


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class _CachingExecutor:
    """The shared cache-front: lookup → compute → store → stamp."""

    def __init__(self, cache: Optional[ResultCache] = None):
        self.cache = cache

    def run(self, request: AnalysisRequest) -> AnalysisResult:
        if self.cache is not None:
            hit = self.cache.lookup(request)
            if hit is not None:
                # The cached payload carries the *first* requester's
                # program name; serve it under the current caller's.
                hit.program = request.name
                return hit
        result, pid = self._compute(request)
        disposition = "bypass"
        if self.cache is not None:
            self.cache.store(request, result)
            disposition = "miss"
        result.provenance = Provenance(
            cache=disposition,
            key=request.cache_key(),
            revalidated=False,
            worker_pid=pid,
        )
        return result

    def _compute(self, request: AnalysisRequest) -> Tuple[AnalysisResult, int]:
        raise NotImplementedError

    def cache_stats(self) -> dict:
        return {
            "enabled": self.cache is not None,
            "stats": self.cache.stats().to_dict()
            if self.cache is not None
            else None,
        }

    def shutdown(self) -> None:
        pass


class InlineExecutor(_CachingExecutor):
    """Run analyses in the serving process (the stdio front door)."""

    def _compute(self, request: AnalysisRequest) -> Tuple[AnalysisResult, int]:
        try:
            result = analyze(request)
        except Exception as error:
            raise ProtocolError(
                ANALYSIS_ERROR,
                "analysis failed: %s: %s" % (type(error).__name__, error),
            ) from None
        if result.status is AnalysisStatus.ERROR:
            raise ProtocolError(
                ANALYSIS_ERROR, result.error or "analysis failed"
            )
        return result, os.getpid()


class PoolExecutor(_CachingExecutor):
    """Dispatch analyses onto the pre-forked crash-isolated worker pool."""

    def __init__(
        self,
        jobs: int = 2,
        timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
    ):
        super().__init__(cache=cache)
        self.timeout = timeout
        self.pool = WorkerPool(_analyze_request_document, jobs=jobs)

    def _compute(self, request: AnalysisRequest) -> Tuple[AnalysisResult, int]:
        envelope = self.pool.submit(request.to_dict(), timeout=self.timeout)
        if envelope.kind == "timeout":
            raise ProtocolError(
                REQUEST_TIMEOUT,
                "request exceeded its %.1fs budget (worker killed and "
                "respawned)" % (self.timeout or 0.0),
                data={"elapsed": round(envelope.elapsed, 3)},
            )
        if envelope.kind == "crash":
            raise ProtocolError(
                WORKER_CRASH,
                "worker crashed mid-request (respawned): %s" % envelope.message,
            )
        if envelope.kind != "ok":
            raise ProtocolError(ANALYSIS_ERROR, envelope.message or "analysis failed")
        payload = envelope.value
        result = AnalysisResult.from_dict(payload["result"])
        if result.status is AnalysisStatus.ERROR:
            raise ProtocolError(
                ANALYSIS_ERROR, result.error or "analysis failed"
            )
        return result, payload["pid"]

    def shutdown(self) -> None:
        self.pool.shutdown()


# ---------------------------------------------------------------------------
# the stdio front door
# ---------------------------------------------------------------------------


class AnalysisService:
    """Protocol + executor, bundled for embedding (tests, stdio, bench)."""

    def __init__(
        self,
        executor: Optional[_CachingExecutor] = None,
        max_program_bytes: int = DEFAULT_MAX_PROGRAM_BYTES,
    ):
        self.executor = executor if executor is not None else InlineExecutor(
            cache=ResultCache()
        )
        self.protocol = ServiceProtocol(
            self.executor, max_program_bytes=max_program_bytes
        )

    def handle_line(self, line) -> Optional[str]:
        return self.protocol.handle_line(line)

    @property
    def shutdown_requested(self) -> bool:
        return self.protocol.shutdown_requested

    def close(self) -> None:
        self.executor.shutdown()


def serve_stdio(
    input_stream=None,
    output_stream=None,
    cache: bool = True,
    cache_entries: int = DEFAULT_MAX_ENTRIES,
    revalidate: bool = True,
    max_program_bytes: int = DEFAULT_MAX_PROGRAM_BYTES,
) -> int:
    """Speak the protocol over stdin/stdout until EOF or ``shutdown``."""
    stdin = input_stream if input_stream is not None else sys.stdin
    stdout = output_stream if output_stream is not None else sys.stdout
    service = AnalysisService(
        InlineExecutor(
            cache=ResultCache(cache_entries, revalidate=revalidate)
            if cache
            else None
        ),
        max_program_bytes=max_program_bytes,
    )
    try:
        for line in stdin:
            response = service.handle_line(line)
            if response is not None:
                stdout.write(response + "\n")
                stdout.flush()
            if service.shutdown_requested:
                break
    finally:
        service.close()
    return 0


# ---------------------------------------------------------------------------
# the asyncio socket front door
# ---------------------------------------------------------------------------


class ServiceServer:
    """Newline-delimited JSON-RPC over TCP, onto the pre-forked pool.

    Lifecycle: :meth:`start` binds (``port=0`` picks a free port and
    updates :attr:`port`), :meth:`serve_forever` runs until a stop is
    requested — by SIGTERM/SIGINT, the protocol's ``shutdown`` method, or
    :meth:`request_stop` — then drains: stop accepting, let in-flight
    connections finish (bounded by a grace period), shut the pool down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 2,
        timeout: Optional[float] = None,
        cache: bool = True,
        cache_entries: int = DEFAULT_MAX_ENTRIES,
        revalidate: bool = True,
        max_program_bytes: int = DEFAULT_MAX_PROGRAM_BYTES,
    ):
        self.host = host
        self.port = port
        self.max_program_bytes = int(max_program_bytes)
        self.executor = PoolExecutor(
            jobs=jobs,
            timeout=timeout,
            cache=ResultCache(cache_entries, revalidate=revalidate)
            if cache
            else None,
        )
        self.protocol = ServiceProtocol(
            self.executor, max_program_bytes=self.max_program_bytes
        )
        # handle_line blocks (cache revalidation, waiting on a worker
        # pipe); it runs on this thread pool so the event loop never does.
        self._threads = ThreadPoolExecutor(
            max_workers=max(4, jobs + 2), thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: Set[asyncio.Task] = set()
        # Connections with a request in flight; only these get the drain
        # grace — idle connections (parked in readline) cancel instantly.
        self._busy: Set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> int:
        """Bind the listener; returns (and records) the bound port."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            # A request line must hold the JSON-escaped program plus the
            # envelope; anything beyond this is an unframeable line.
            limit=2 * self.max_program_bytes + (1 << 16),
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def request_stop(self) -> None:
        """Begin a graceful drain (safe to call from any thread)."""
        if self._loop is None or self._stop is None:
            return
        self._loop.call_soon_threadsafe(self._stop.set)

    async def serve_forever(self) -> None:
        """Serve until a stop is requested, then drain and tear down."""
        assert self._server is not None and self._stop is not None
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        try:
            await self._stop.wait()
        finally:
            for signum in installed:
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            self._server.close()
            await self._server.wait_closed()
            for task in list(self._connections):
                if task not in self._busy:
                    task.cancel()
            if self._connections:
                done, pending = await asyncio.wait(
                    list(self._connections), timeout=DRAIN_GRACE_SECONDS
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            self.executor.shutdown()
            self._threads.shutdown(wait=False)

    async def run(self) -> int:
        """``start()`` + ``serve_forever()`` in one call; returns the port
        it served on (mostly for symmetry with :func:`serve_stdio`)."""
        port = await self.start()
        await self.serve_forever()
        return port

    # -- per-connection loop -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line exceeded the stream limit: framing is
                    # lost, so answer once and close this connection.
                    payload = json.dumps(
                        error_response(
                            None,
                            PARSE_ERROR,
                            "request line exceeds the stream limit",
                        )
                    )
                    writer.write(payload.encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                if task is not None:
                    self._busy.add(task)
                try:
                    response = await loop.run_in_executor(
                        self._threads, self.protocol.handle_line, line
                    )
                    if response is not None:
                        writer.write(response.encode("utf-8") + b"\n")
                        await writer.drain()
                finally:
                    if task is not None:
                        self._busy.discard(task)
                if self.protocol.shutdown_requested or self._stop.is_set():
                    self._stop.set()
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._busy.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# embedding helper (tests and the service bench)
# ---------------------------------------------------------------------------


class RunningServer:
    """A :class:`ServiceServer` running on a daemon thread."""

    def __init__(self, server: ServiceServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def cache_stats(self) -> dict:
        return self.server.executor.cache_stats()

    def stop(self, join_timeout: float = 60.0) -> None:
        self.server.request_stop()
        self.thread.join(join_timeout)

    def __enter__(self) -> "RunningServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_server_in_thread(**kwargs) -> RunningServer:
    """Start a :class:`ServiceServer` on a background thread.

    Returns once the listener is bound (so ``.port`` is final).  The
    caller stops it with :meth:`RunningServer.stop` (or ``with``).
    """
    server = ServiceServer(**kwargs)
    started = threading.Event()
    failure = []

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            try:
                await server.start()
            finally:
                started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(_main())
        except Exception as error:  # surfaced via `failure` below
            failure.append(error)
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=60.0):
        raise RuntimeError("service did not start within 60s")
    if failure:
        raise RuntimeError("service failed to start: %s" % failure[0])
    return RunningServer(server, thread)
