"""A minimal line client for the analysis service, with retry built in.

The service sheds load deliberately: ``OVERLOADED`` (-32005) is not a
failure, it is the server telling a caller *when to come back*
(``data.retry_after_seconds``).  A well-behaved client therefore needs
exactly one piece of cleverness — :func:`call_with_retry` — and this
module packages it next to a deliberately small blocking client so the
bench harness, the CI smoke jobs and user scripts all retry the same
way instead of re-inventing (and mis-inventing) backoff.

Retryable errors and their waits:

* ``OVERLOADED`` (-32005) — wait the server-provided
  ``retry_after_seconds`` (plus jitter);
* ``REQUEST_TIMEOUT`` (-32001) and ``WORKER_CRASH`` (-32002) — wait a
  jittered exponential backoff (the crash was already cleaned up server
  side; an immediate retry usually lands on a fresh worker);
* connection drops mid-call — reconnect and retry the same way (the
  request is idempotent: results are content-addressed).

Everything else (parse errors, invalid params, ``SHUTTING_DOWN``,
analysis errors) is returned/raised immediately — retrying a request
that is *wrong* only adds load.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Callable, Optional

from repro.service.protocol import (
    OVERLOADED,
    REQUEST_TIMEOUT,
    WORKER_CRASH,
)

#: Error codes that mean "try the identical request again later".
RETRYABLE_CODES = (REQUEST_TIMEOUT, WORKER_CRASH, OVERLOADED)


class ServiceError(Exception):
    """A JSON-RPC error response, raised by the client helpers."""

    def __init__(self, code: int, message: str, data: Optional[dict] = None):
        super().__init__("[%d] %s" % (code, message))
        self.code = code
        self.message = message
        self.data = data or {}

    @property
    def retry_after_seconds(self) -> Optional[float]:
        value = self.data.get("retry_after_seconds")
        return float(value) if isinstance(value, (int, float)) else None


class ServiceUnavailable(Exception):
    """The transport died (connection refused/reset) — retryable."""


class ServiceClient:
    """A blocking newline-delimited JSON-RPC client over TCP.

    Reconnects lazily: a dropped connection surfaces as
    :class:`ServiceUnavailable` on the call that hit it, and the next
    call dials fresh — which is exactly the shape
    :func:`call_with_retry` expects.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = 10.0,
        read_timeout: Optional[float] = 300.0,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- transport ---------------------------------------------------------------

    def _connected(self):
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError as error:
                raise ServiceUnavailable(
                    "cannot connect to %s:%d: %s" % (self.host, self.port, error)
                ) from None
            sock.settimeout(self.read_timeout)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self._file

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._file = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- calls -------------------------------------------------------------------

    def call(self, method: str, params: Optional[dict] = None) -> Any:
        """One request/response; raises :class:`ServiceError` on a JSON-RPC
        error and :class:`ServiceUnavailable` on a dead transport."""
        self._next_id += 1
        payload = {
            "jsonrpc": "2.0",
            "id": self._next_id,
            "method": method,
            "params": params if params is not None else {},
        }
        try:
            stream = self._connected()
            stream.write(json.dumps(payload).encode("utf-8") + b"\n")
            stream.flush()
            line = stream.readline()
        except (OSError, ValueError) as error:
            self.close()
            raise ServiceUnavailable("transport failed: %s" % error) from None
        if not line:
            # EOF mid-call: the server hung up (drain, crash, or an
            # injected drop_connection fault).
            self.close()
            raise ServiceUnavailable("connection closed by server")
        try:
            response = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            # A torn response line (injected drop faults cut lines in
            # half) — the transport can no longer be trusted to frame.
            self.close()
            raise ServiceUnavailable("torn response line: %s" % error) from None
        error_obj = response.get("error")
        if error_obj is not None:
            raise ServiceError(
                int(error_obj.get("code", 0)),
                str(error_obj.get("message", "")),
                error_obj.get("data"),
            )
        return response.get("result")

    def analyze(self, params: dict) -> dict:
        return self.call("analyze", params)

    def cache_stats(self) -> dict:
        return self.call("cache_stats")


def call_with_retry(
    call: Callable[[], Any],
    max_attempts: int = 6,
    base_delay: float = 0.1,
    max_delay: float = 10.0,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, float, Exception], None]] = None,
) -> Any:
    """Run *call* until it succeeds or retries are exhausted.

    *call* is any zero-argument callable (typically a
    ``functools.partial`` over :meth:`ServiceClient.call`).  Retried
    failures are :class:`ServiceError` with a code in
    :data:`RETRYABLE_CODES` and :class:`ServiceUnavailable`; anything
    else propagates immediately.

    Waits are **jittered exponential backoff** — uniformly drawn from
    ``(delay/2, delay]`` where ``delay = min(max_delay, base_delay *
    2**attempt)`` — except that an ``OVERLOADED`` response carrying
    ``retry_after_seconds`` takes the *server's* estimate (jittered the
    same way) instead: the server knows its queue depth; the client
    does not.

    *on_retry* (if given) is called with ``(attempt, wait_seconds,
    error)`` before each sleep — the bench uses it to count sheds.
    """
    rng = rng if rng is not None else random.Random()
    last: Optional[Exception] = None
    for attempt in range(max_attempts):
        try:
            return call()
        except ServiceError as error:
            if error.code not in RETRYABLE_CODES:
                raise
            last = error
            delay = min(max_delay, base_delay * (2.0 ** attempt))
            hinted = error.retry_after_seconds
            if error.code == OVERLOADED and hinted is not None:
                delay = min(max_delay, hinted)
        except ServiceUnavailable as error:
            last = error
            delay = min(max_delay, base_delay * (2.0 ** attempt))
        if attempt == max_attempts - 1:
            break
        wait = delay / 2.0 + rng.random() * (delay / 2.0)
        if on_retry is not None:
            on_retry(attempt, wait, last)
        sleep(wait)
    assert last is not None
    raise last
