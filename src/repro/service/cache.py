"""The content-addressed, checker-revalidated result cache.

Keys are :meth:`repro.api.request.AnalysisRequest.cache_key` — SHA-256
over the canonicalised program text, the canonical tool name and the
config's canonical JSON — so two requests share an entry exactly when
they ask for the identical analysis.  Values are stored as the result's
plain-JSON dictionary (the exact round-trip of
:class:`~repro.api.result.AnalysisResult`), which makes entries immune
to caller-side mutation: every lookup deserialises a fresh result.

**The revalidation guarantee.**  A cached ``TERMINATING`` claim is never
served on trust.  On every hit the synthesised ranking function is
re-verified against a freshly built termination problem by the
independent certificate checker of :mod:`repro.checking.checker` — the
engine that shares no code with the LP/SMT synthesis loop.  A cached
``NONTERMINATING`` claim gets the same treatment: its lasso witness is
replayed against a freshly built automaton by
:func:`repro.checking.recurrence.check_recurrence`, and an entry with
no lasso at all is unauditable and refused.  A hit whose certificate
the checker cannot re-validate is **dropped and recounted as a miss**
(and ``revalidation_failures`` is incremented), so a corrupted or stale
entry can cost throughput but never soundness.  Problems/automata are
memoised per key, so steady-state revalidation costs one checker pass,
not a pipeline rebuild.

Unproved cached results (``unknown``) carry no certificate; they are
served as hits with ``provenance.revalidated = False``.  Error and
timeout results are never cached at all — failures are assumed
transient.

**The disk tier.**  With a ``cache_dir`` the cache also persists every
store as one content-addressed file per key (``<cache_dir>/<key>.json``)
so a restarted server answers warm traffic immediately.  Writes are
crash-safe: the document goes to a temporary file in the same directory,
is ``fsync``\\ ed, then atomically ``os.replace``\\ d into place — a
``kill -9`` mid-write leaves either the old entry or the new one, never
a torn file.  Each file carries a SHA-256 checksum of its payload;
loads that fail to parse, fail the checksum, or disagree with their
filename key are **deleted and counted** (``disk_drops``), and a loaded
proved entry still passes the full checker gate above before it is ever
served — which is exactly why persistence is safe here: a stale,
corrupted or tampered disk entry costs a miss, never soundness.  The
tier is LRU-bounded by total bytes (oldest files evicted first) and
loaded lazily: restart cost is one ``listdir``, not a full read.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.api.request import AnalysisRequest
from repro.api.result import AnalysisResult, AnalysisStatus, Provenance

#: Default bound on resident entries (LRU eviction beyond it).
DEFAULT_MAX_ENTRIES = 4096

#: Default bound on the disk tier's total size (bytes).
DEFAULT_MAX_DISK_BYTES = 64 * 1024 * 1024

#: Schema tag written into every disk entry.
_DISK_SCHEMA = 1


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` (all monotonic except sizes)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    revalidations: int = 0
    revalidation_failures: int = 0
    entries: int = 0
    problems_resident: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    disk_drops: int = 0
    disk_evictions: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "revalidations": self.revalidations,
            "revalidation_failures": self.revalidation_failures,
            "entries": self.entries,
            "problems_resident": self.problems_resident,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_drops": self.disk_drops,
            "disk_evictions": self.disk_evictions,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
        }


@dataclass
class _Entry:
    result: dict
    # The rebuilt TerminationProblem, memoised after the first
    # revalidation so later hits pay one checker pass only.
    problem: object = None
    checkable: bool = field(default=False)
    # The rebuilt ControlFlowAutomaton, memoised likewise for
    # NONTERMINATING entries (lasso replay anchors to the automaton,
    # not the large-block problem).
    automaton: object = None


class ResultCache:
    """Thread-safe content-addressed cache of analysis results.

    *revalidate* disables the checker gate (used only by tests and
    explicitly flagged deployments; the default — re-check every proved
    hit — is the service's headline guarantee).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        revalidate: bool = True,
        cache_dir: Optional[str] = None,
        max_disk_bytes: int = DEFAULT_MAX_DISK_BYTES,
        fault_injector=None,
    ):
        self.max_entries = max(1, int(max_entries))
        self.revalidate = revalidate
        self.cache_dir = cache_dir
        self.max_disk_bytes = max(1, int(max_disk_bytes))
        self._fault_injector = fault_injector
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._stats = CacheStats()
        # key → file size, oldest first; built lazily on first disk use.
        self._disk_lock = threading.Lock()
        self._disk_index: Optional["OrderedDict[str, int]"] = None
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)

    # -- statistics --------------------------------------------------------------

    def stats(self) -> CacheStats:
        if self.cache_dir is not None:
            with self._disk_lock:
                index = self._disk_index_locked()
                disk_entries = len(index)
                disk_bytes = sum(index.values())
        else:
            disk_entries = disk_bytes = 0
        with self._lock:
            self._stats.entries = len(self._entries)
            self._stats.problems_resident = sum(
                1 for entry in self._entries.values() if entry.problem is not None
            )
            self._stats.disk_entries = disk_entries
            self._stats.disk_bytes = disk_bytes
            return CacheStats(**self._stats.to_dict())

    # -- the read path -----------------------------------------------------------

    def lookup(self, request: AnalysisRequest) -> Optional[AnalysisResult]:
        """The cached result for *request*, revalidated, or ``None``.

        A returned result is a fresh deserialisation stamped with
        ``provenance = Provenance("hit", key, revalidated, pid)``.
        """
        key = request.cache_key()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None and self.cache_dir is not None:
            entry = self._disk_load(key)
        if entry is None:
            with self._lock:
                self._stats.misses += 1
            return None

        result = AnalysisResult.from_dict(entry.result)
        revalidated = False
        if self.revalidate and result.proved and result.ranking is not None:
            ok, revalidated = self._revalidate(request, key, entry, result)
            if not ok:
                with self._lock:
                    self._stats.revalidation_failures += 1
                    self._stats.misses += 1
                    self._entries.pop(key, None)
                self._disk_discard(key)
                return None
        elif self.revalidate and result.status is AnalysisStatus.NONTERMINATING:
            ok, revalidated = self._revalidate_lasso(request, entry, result)
            if not ok:
                with self._lock:
                    self._stats.revalidation_failures += 1
                    self._stats.misses += 1
                    self._entries.pop(key, None)
                self._disk_discard(key)
                return None
        with self._lock:
            self._stats.hits += 1
        result.provenance = Provenance(
            cache="hit",
            key=key,
            revalidated=revalidated,
            worker_pid=os.getpid(),
            kernel=result.lp_statistics.kernel_chosen,
        )
        return result

    def _revalidate(
        self,
        request: AnalysisRequest,
        key: str,
        entry: _Entry,
        result: AnalysisResult,
    ) -> Tuple[bool, bool]:
        """Re-check *result*'s certificate; ``(serve it, was checked)``.

        ``serve it`` is False when the independent checker refutes (or
        cannot conclude on) the certificate.  ``was checked`` is True
        when the checker actually re-validated it — a proved program with
        no proof obligations (no cycle) is vacuously valid and also
        reported as revalidated.
        """
        from repro.api.pipeline import Analysis
        from repro.checking.checker import CertificateVerdict, check_ranking

        problem = entry.problem
        if problem is None:
            try:
                analysis = Analysis(
                    request.program, config=request.config, name=request.name
                )
                problem = analysis.problem()
            except Exception:
                # The cached claim cannot even be re-anchored to a
                # problem — refuse to serve it.
                return False, False
            with self._lock:
                entry.problem = problem
                entry.checkable = bool(problem.blocks)
        if not entry.checkable:
            # No cyclic behaviour: termination is vacuous, nothing to refute.
            with self._lock:
                self._stats.revalidations += 1
            return True, True
        try:
            verdict = check_ranking(
                problem,
                result.ranking,
                integer_mode=request.config.integer_mode,
            )
        except Exception:
            return False, False
        with self._lock:
            self._stats.revalidations += 1
        if verdict.status != CertificateVerdict.VALID:
            return False, False
        return True, True

    def _revalidate_lasso(
        self,
        request: AnalysisRequest,
        entry: _Entry,
        result: AnalysisResult,
    ) -> Tuple[bool, bool]:
        """Replay a cached NONTERMINATING claim's lasso witness.

        Mirrors :meth:`_revalidate` for the other verdict: the automaton
        is rebuilt once and memoised on the entry, and only a lasso the
        independent recurrence checker marks VALID is served.  An entry
        claiming NONTERMINATING without a lasso is unauditable — dropped.
        """
        from repro.api.pipeline import Analysis
        from repro.checking.checker import CertificateVerdict
        from repro.checking.recurrence import check_recurrence

        if result.lasso is None:
            return False, False
        automaton = entry.automaton
        if automaton is None:
            try:
                analysis = Analysis(
                    request.program, config=request.config, name=request.name
                )
                automaton = analysis.automaton()
            except Exception:
                return False, False
            with self._lock:
                entry.automaton = automaton
        try:
            verdict = check_recurrence(automaton, result.lasso)
        except Exception:
            return False, False
        with self._lock:
            self._stats.revalidations += 1
        if verdict.status != CertificateVerdict.VALID:
            return False, False
        return True, True

    # -- the write path ----------------------------------------------------------

    def store(self, request: AnalysisRequest, result: AnalysisResult) -> bool:
        """Cache *result* under *request*'s key.

        Error/timeout results are rejected (returns ``False``) — they are
        transient, and caching them would pin a flake forever.  The
        stored copy is provenance-free; provenance describes a serving,
        not a value.
        """
        if result.status in (AnalysisStatus.ERROR, AnalysisStatus.TIMEOUT):
            return False
        document = result.to_dict()
        document["provenance"] = None
        key = request.cache_key()
        with self._lock:
            self._entries[key] = _Entry(result=document)
            self._entries.move_to_end(key)
            self._stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
        if self.cache_dir is not None:
            self._disk_store(key, document)
        return True

    # -- the disk tier -----------------------------------------------------------

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key + ".json")

    def _disk_index_locked(self) -> "OrderedDict[str, int]":
        """The key → size map, oldest first.  Requires ``_disk_lock``."""
        if self._disk_index is None:
            found = []
            try:
                names = os.listdir(self.cache_dir)
            except OSError:
                names = []
            for name in names:
                if not name.endswith(".json"):
                    continue
                try:
                    status = os.stat(os.path.join(self.cache_dir, name))
                except OSError:
                    continue
                found.append((status.st_mtime, name[: -len(".json")],
                              status.st_size))
            found.sort()
            self._disk_index = OrderedDict(
                (key, size) for _, key, size in found
            )
        return self._disk_index

    def _disk_store(self, key: str, document: dict) -> None:
        """Persist one entry: write-to-temp, fsync, atomic rename."""
        payload = json.dumps(document, sort_keys=True)
        wrapper = json.dumps(
            {
                "schema": _DISK_SCHEMA,
                "key": key,
                "sha256": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
                "result": document,
            },
            sort_keys=True,
        ).encode("utf-8")
        path = self._disk_path(key)
        temp = os.path.join(
            self.cache_dir,
            ".%s.%d.%d.tmp"
            % (key, os.getpid(), threading.get_ident()),
        )
        try:
            with open(temp, "wb") as handle:
                handle.write(wrapper)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, path)
        except OSError:
            # Disk trouble degrades persistence, never a response.
            try:
                os.unlink(temp)
            except OSError:
                pass
            return
        with self._disk_lock:
            index = self._disk_index_locked()
            index.pop(key, None)
            index[key] = len(wrapper)
            with self._lock:
                self._stats.disk_stores += 1
            while sum(index.values()) > self.max_disk_bytes and len(index) > 1:
                victim, _ = index.popitem(last=False)
                try:
                    os.unlink(self._disk_path(victim))
                except OSError:
                    pass
                with self._lock:
                    self._stats.disk_evictions += 1
        if self._fault_injector is not None:
            if self._fault_injector.decide("corrupt_cache"):
                self.corrupt_disk_entry(key)
            elif self._fault_injector.decide("truncate_cache"):
                self.corrupt_disk_entry(key, truncate=True)

    def _disk_load(self, key: str) -> Optional[_Entry]:
        """Promote a persisted entry into memory, or drop it if damaged.

        Integrity checks here (parse, schema, filename/key agreement,
        payload checksum) catch corruption and tampering; the checker
        gate in :meth:`lookup` still stands between a loaded *proved*
        entry and the caller.
        """
        path = self._disk_path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        document = None
        try:
            wrapper = json.loads(raw.decode("utf-8"))
            if (
                isinstance(wrapper, dict)
                and wrapper.get("schema") == _DISK_SCHEMA
                and wrapper.get("key") == key
                and isinstance(wrapper.get("result"), dict)
            ):
                payload = json.dumps(wrapper["result"], sort_keys=True)
                digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
                if digest == wrapper.get("sha256"):
                    document = wrapper["result"]
        except (ValueError, UnicodeDecodeError):
            document = None
        if document is not None:
            try:
                AnalysisResult.from_dict(document)
            except Exception:
                document = None
        if document is None:
            self._disk_discard(key)
            with self._lock:
                self._stats.disk_drops += 1
            return None
        # Touch the file so restart-time LRU ordering tracks use.
        try:
            os.utime(path)
        except OSError:
            pass
        with self._disk_lock:
            index = self._disk_index_locked()
            size = index.pop(key, len(raw))
            index[key] = size
        entry = _Entry(result=document)
        with self._lock:
            self._stats.disk_hits += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
        return entry

    def _disk_discard(self, key: str) -> None:
        if self.cache_dir is None:
            return
        try:
            os.unlink(self._disk_path(key))
        except OSError:
            pass
        with self._disk_lock:
            if self._disk_index is not None:
                self._disk_index.pop(key, None)

    def corrupt_disk_entry(self, key: str, truncate: bool = False) -> bool:
        """Damage *key*'s disk file (fault injection and tests only).

        ``truncate`` cuts the document in half mid-JSON; otherwise
        garbage bytes are splatted into the middle of the document.
        Both must be caught by the load-path integrity checks.  Returns
        whether a file was hit.
        """
        if self.cache_dir is None:
            return False
        path = self._disk_path(key)
        try:
            size = os.path.getsize(path)
            if truncate:
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, size // 2))
            else:
                with open(path, "r+b") as handle:
                    handle.seek(max(0, size // 2))
                    handle.write(b"\xde\xad\xbe\xef")
        except OSError:
            return False
        return True

    def disk_keys(self) -> list:
        """The keys currently persisted (oldest first; for tests/bench)."""
        if self.cache_dir is None:
            return []
        with self._disk_lock:
            return list(self._disk_index_locked())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, request: AnalysisRequest) -> bool:
        with self._lock:
            return request.cache_key() in self._entries
