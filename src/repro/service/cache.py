"""The content-addressed, checker-revalidated result cache.

Keys are :meth:`repro.api.request.AnalysisRequest.cache_key` — SHA-256
over the canonicalised program text, the canonical tool name and the
config's canonical JSON — so two requests share an entry exactly when
they ask for the identical analysis.  Values are stored as the result's
plain-JSON dictionary (the exact round-trip of
:class:`~repro.api.result.AnalysisResult`), which makes entries immune
to caller-side mutation: every lookup deserialises a fresh result.

**The revalidation guarantee.**  A cached ``TERMINATING`` claim is never
served on trust.  On every hit the synthesised ranking function is
re-verified against a freshly built termination problem by the
independent certificate checker of :mod:`repro.checking.checker` — the
engine that shares no code with the LP/SMT synthesis loop.  A cached
``NONTERMINATING`` claim gets the same treatment: its lasso witness is
replayed against a freshly built automaton by
:func:`repro.checking.recurrence.check_recurrence`, and an entry with
no lasso at all is unauditable and refused.  A hit whose certificate
the checker cannot re-validate is **dropped and recounted as a miss**
(and ``revalidation_failures`` is incremented), so a corrupted or stale
entry can cost throughput but never soundness.  Problems/automata are
memoised per key, so steady-state revalidation costs one checker pass,
not a pipeline rebuild.

Unproved cached results (``unknown``) carry no certificate; they are
served as hits with ``provenance.revalidated = False``.  Error and
timeout results are never cached at all — failures are assumed
transient.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.api.request import AnalysisRequest
from repro.api.result import AnalysisResult, AnalysisStatus, Provenance

#: Default bound on resident entries (LRU eviction beyond it).
DEFAULT_MAX_ENTRIES = 4096


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` (all monotonic except sizes)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    revalidations: int = 0
    revalidation_failures: int = 0
    entries: int = 0
    problems_resident: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "revalidations": self.revalidations,
            "revalidation_failures": self.revalidation_failures,
            "entries": self.entries,
            "problems_resident": self.problems_resident,
        }


@dataclass
class _Entry:
    result: dict
    # The rebuilt TerminationProblem, memoised after the first
    # revalidation so later hits pay one checker pass only.
    problem: object = None
    checkable: bool = field(default=False)
    # The rebuilt ControlFlowAutomaton, memoised likewise for
    # NONTERMINATING entries (lasso replay anchors to the automaton,
    # not the large-block problem).
    automaton: object = None


class ResultCache:
    """Thread-safe content-addressed cache of analysis results.

    *revalidate* disables the checker gate (used only by tests and
    explicitly flagged deployments; the default — re-check every proved
    hit — is the service's headline guarantee).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        revalidate: bool = True,
    ):
        self.max_entries = max(1, int(max_entries))
        self.revalidate = revalidate
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._stats = CacheStats()

    # -- statistics --------------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            self._stats.entries = len(self._entries)
            self._stats.problems_resident = sum(
                1 for entry in self._entries.values() if entry.problem is not None
            )
            return CacheStats(**self._stats.to_dict())

    # -- the read path -----------------------------------------------------------

    def lookup(self, request: AnalysisRequest) -> Optional[AnalysisResult]:
        """The cached result for *request*, revalidated, or ``None``.

        A returned result is a fresh deserialisation stamped with
        ``provenance = Provenance("hit", key, revalidated, pid)``.
        """
        key = request.cache_key()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            with self._lock:
                self._stats.misses += 1
            return None

        result = AnalysisResult.from_dict(entry.result)
        revalidated = False
        if self.revalidate and result.proved and result.ranking is not None:
            ok, revalidated = self._revalidate(request, key, entry, result)
            if not ok:
                with self._lock:
                    self._stats.revalidation_failures += 1
                    self._stats.misses += 1
                    self._entries.pop(key, None)
                return None
        elif self.revalidate and result.status is AnalysisStatus.NONTERMINATING:
            ok, revalidated = self._revalidate_lasso(request, entry, result)
            if not ok:
                with self._lock:
                    self._stats.revalidation_failures += 1
                    self._stats.misses += 1
                    self._entries.pop(key, None)
                return None
        with self._lock:
            self._stats.hits += 1
        result.provenance = Provenance(
            cache="hit", key=key, revalidated=revalidated, worker_pid=os.getpid()
        )
        return result

    def _revalidate(
        self,
        request: AnalysisRequest,
        key: str,
        entry: _Entry,
        result: AnalysisResult,
    ) -> Tuple[bool, bool]:
        """Re-check *result*'s certificate; ``(serve it, was checked)``.

        ``serve it`` is False when the independent checker refutes (or
        cannot conclude on) the certificate.  ``was checked`` is True
        when the checker actually re-validated it — a proved program with
        no proof obligations (no cycle) is vacuously valid and also
        reported as revalidated.
        """
        from repro.api.pipeline import Analysis
        from repro.checking.checker import CertificateVerdict, check_ranking

        problem = entry.problem
        if problem is None:
            try:
                analysis = Analysis(
                    request.program, config=request.config, name=request.name
                )
                problem = analysis.problem()
            except Exception:
                # The cached claim cannot even be re-anchored to a
                # problem — refuse to serve it.
                return False, False
            with self._lock:
                entry.problem = problem
                entry.checkable = bool(problem.blocks)
        if not entry.checkable:
            # No cyclic behaviour: termination is vacuous, nothing to refute.
            with self._lock:
                self._stats.revalidations += 1
            return True, True
        try:
            verdict = check_ranking(
                problem,
                result.ranking,
                integer_mode=request.config.integer_mode,
            )
        except Exception:
            return False, False
        with self._lock:
            self._stats.revalidations += 1
        if verdict.status != CertificateVerdict.VALID:
            return False, False
        return True, True

    def _revalidate_lasso(
        self,
        request: AnalysisRequest,
        entry: _Entry,
        result: AnalysisResult,
    ) -> Tuple[bool, bool]:
        """Replay a cached NONTERMINATING claim's lasso witness.

        Mirrors :meth:`_revalidate` for the other verdict: the automaton
        is rebuilt once and memoised on the entry, and only a lasso the
        independent recurrence checker marks VALID is served.  An entry
        claiming NONTERMINATING without a lasso is unauditable — dropped.
        """
        from repro.api.pipeline import Analysis
        from repro.checking.checker import CertificateVerdict
        from repro.checking.recurrence import check_recurrence

        if result.lasso is None:
            return False, False
        automaton = entry.automaton
        if automaton is None:
            try:
                analysis = Analysis(
                    request.program, config=request.config, name=request.name
                )
                automaton = analysis.automaton()
            except Exception:
                return False, False
            with self._lock:
                entry.automaton = automaton
        try:
            verdict = check_recurrence(automaton, result.lasso)
        except Exception:
            return False, False
        with self._lock:
            self._stats.revalidations += 1
        if verdict.status != CertificateVerdict.VALID:
            return False, False
        return True, True

    # -- the write path ----------------------------------------------------------

    def store(self, request: AnalysisRequest, result: AnalysisResult) -> bool:
        """Cache *result* under *request*'s key.

        Error/timeout results are rejected (returns ``False``) — they are
        transient, and caching them would pin a flake forever.  The
        stored copy is provenance-free; provenance describes a serving,
        not a value.
        """
        if result.status in (AnalysisStatus.ERROR, AnalysisStatus.TIMEOUT):
            return False
        document = result.to_dict()
        document["provenance"] = None
        key = request.cache_key()
        with self._lock:
            self._entries[key] = _Entry(result=document)
            self._entries.move_to_end(key)
            self._stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, request: AnalysisRequest) -> bool:
        with self._lock:
            return request.cache_key() in self._entries
