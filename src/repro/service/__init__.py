"""Analysis-as-a-service: the resident front door.

The batch tools (``repro prove`` / ``repro table1``) pay interpreter
start-up, registry population and constraint interning on every
invocation.  This package keeps all of that **resident** and serves
analyses over a tiny wire protocol instead:

* :mod:`repro.service.protocol` — a JSON-RPC 2.0 layer speaking
  newline-delimited requests, with methods ``analyze``,
  ``analyze_batch``, ``list_provers``, ``cache_stats`` and ``shutdown``.
  The payload schema is exactly the JSON round-trip of
  :class:`~repro.api.request.AnalysisRequest` and
  :class:`~repro.api.result.AnalysisResult` — there is no second wire
  format.
* :mod:`repro.service.cache` — a content-addressed result cache keyed on
  (canonical program text, tool, canonical config JSON).  A **hit is
  never served unverified**: proved results are re-validated by the
  independent certificate checker of :mod:`repro.checking` first, and a
  failing revalidation demotes the hit to a miss.
* :mod:`repro.service.server` — the two front doors: ``repro serve
  --stdio`` (inline, single-process) and ``repro serve --port N`` (an
  asyncio socket server dispatching onto the pre-forked crash-isolated
  :class:`~repro.reporting.parallel.WorkerPool`, with per-request
  timeouts and graceful drain on SIGTERM).

See ``docs/SERVICE.md`` for the protocol reference and deployment notes.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.protocol import (
    ANALYSIS_ERROR,
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    JSONRPC_VERSION,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    PROGRAM_TOO_LARGE,
    ProtocolError,
    REQUEST_TIMEOUT,
    SERVICE_METHODS,
    SHUTTING_DOWN,
    ServiceProtocol,
    WORKER_CRASH,
    error_response,
    result_response,
)
from repro.service.server import (
    AnalysisService,
    InlineExecutor,
    PoolExecutor,
    RunningServer,
    ServiceServer,
    run_server_in_thread,
    serve_stdio,
)

__all__ = [
    "ResultCache",
    "CacheStats",
    "ProtocolError",
    "ServiceProtocol",
    "SERVICE_METHODS",
    "JSONRPC_VERSION",
    "error_response",
    "result_response",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "ANALYSIS_ERROR",
    "REQUEST_TIMEOUT",
    "WORKER_CRASH",
    "PROGRAM_TOO_LARGE",
    "SHUTTING_DOWN",
    "AnalysisService",
    "InlineExecutor",
    "PoolExecutor",
    "RunningServer",
    "ServiceServer",
    "serve_stdio",
    "run_server_in_thread",
]
