"""Analysis-as-a-service: the resident front door.

The batch tools (``repro prove`` / ``repro table1``) pay interpreter
start-up, registry population and constraint interning on every
invocation.  This package keeps all of that **resident** and serves
analyses over a tiny wire protocol instead:

* :mod:`repro.service.protocol` — a JSON-RPC 2.0 layer speaking
  newline-delimited requests, with methods ``analyze``,
  ``analyze_batch``, ``list_provers``, ``cache_stats`` and ``shutdown``.
  The payload schema is exactly the JSON round-trip of
  :class:`~repro.api.request.AnalysisRequest` and
  :class:`~repro.api.result.AnalysisResult` — there is no second wire
  format.
* :mod:`repro.service.cache` — a content-addressed result cache keyed on
  (canonical program text, tool, canonical config JSON).  A **hit is
  never served unverified**: proved results are re-validated by the
  independent certificate checker of :mod:`repro.checking` first, and a
  failing revalidation demotes the hit to a miss.
* :mod:`repro.service.server` — the two front doors: ``repro serve
  --stdio`` (inline, single-process) and ``repro serve --port N`` (an
  asyncio socket server dispatching onto the pre-forked crash-isolated
  :class:`~repro.reporting.parallel.WorkerPool`, with per-request
  timeouts and graceful drain on SIGTERM).
* :mod:`repro.service.admission` — overload hardening: the bounded
  in-flight/queue :class:`AdmissionGate` (sheds with ``OVERLOADED``,
  degrades under pressure) and the per-tool :class:`CircuitBreaker`.
* :mod:`repro.service.faults` — the deterministic fault-injection
  harness (``repro serve --fault-plan``) behind the ``service_chaos``
  bench suite.
* :mod:`repro.service.client` — a minimal line client plus
  :func:`~repro.service.client.call_with_retry`, the jittered
  exponential-backoff helper every well-behaved caller should use.

See ``docs/SERVICE.md`` for the protocol reference and deployment notes.
"""

from repro.service.admission import (
    AdmissionGate,
    CircuitBreaker,
    Overloaded,
    ShuttingDown,
)
from repro.service.cache import CacheStats, ResultCache
from repro.service.client import ServiceClient, call_with_retry
from repro.service.faults import FaultInjector, FaultPlan, FaultPlanError
from repro.service.protocol import (
    ANALYSIS_ERROR,
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    JSONRPC_VERSION,
    METHOD_NOT_FOUND,
    OVERLOADED,
    PARSE_ERROR,
    PROGRAM_TOO_LARGE,
    ProtocolError,
    REQUEST_TIMEOUT,
    SERVICE_METHODS,
    SHUTTING_DOWN,
    ServiceProtocol,
    WORKER_CRASH,
    error_response,
    result_response,
)
from repro.service.server import (
    AnalysisService,
    InlineExecutor,
    PoolExecutor,
    RunningServer,
    ServiceServer,
    run_server_in_thread,
    serve_stdio,
)

__all__ = [
    "ResultCache",
    "CacheStats",
    "ProtocolError",
    "ServiceProtocol",
    "SERVICE_METHODS",
    "JSONRPC_VERSION",
    "error_response",
    "result_response",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "ANALYSIS_ERROR",
    "REQUEST_TIMEOUT",
    "WORKER_CRASH",
    "PROGRAM_TOO_LARGE",
    "SHUTTING_DOWN",
    "OVERLOADED",
    "AdmissionGate",
    "CircuitBreaker",
    "Overloaded",
    "ShuttingDown",
    "FaultPlan",
    "FaultPlanError",
    "FaultInjector",
    "ServiceClient",
    "call_with_retry",
    "AnalysisService",
    "InlineExecutor",
    "PoolExecutor",
    "RunningServer",
    "ServiceServer",
    "serve_stdio",
    "run_server_in_thread",
]
