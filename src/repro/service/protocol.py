"""The JSON-RPC 2.0 protocol layer of the analysis service.

Transport-agnostic: :class:`ServiceProtocol` turns one newline-delimited
request line into (at most) one response line, and both front doors —
the stdio loop and the asyncio socket server of
:mod:`repro.service.server` — drive exactly this object.  The payload
schema is the existing JSON round-trip of the analysis API, verbatim:
``analyze`` params are an :class:`~repro.api.request.AnalysisRequest`
document, results are :class:`~repro.api.result.AnalysisResult`
documents.

Methods
-------

``analyze``
    params: one ``AnalysisRequest`` document.  Result: one
    ``AnalysisResult`` document (with ``provenance`` stamped).
``analyze_batch``
    params: ``{"requests": [AnalysisRequest, ...]}``.  Result:
    ``{"results": [AnalysisResult, ...]}``, positionally aligned.  A
    member that times out or crashes its worker comes back as a
    ``timeout``/``error`` *result* so the batch stays rectangular.
``list_provers``
    The prover registry: ``{"provers": {...}, "capabilities": {...}}``.
``cache_stats``
    The result cache's counters (hits, misses, revalidations,
    revalidation failures, entries) plus whether caching is enabled.
``shutdown``
    Acknowledges with ``{"stopping": true}`` and flags the transport to
    drain and exit.

Error taxonomy
--------------

The four JSON-RPC standard codes, plus implementation-defined codes in
the reserved ``-32000…-32099`` band:

=====================  ======  ==============================================
name                   code    raised when
=====================  ======  ==============================================
``PARSE_ERROR``        -32700  the line is not valid JSON
``INVALID_REQUEST``    -32600  the envelope is not a JSON-RPC 2.0 request
``METHOD_NOT_FOUND``   -32601  unknown method name
``INVALID_PARAMS``     -32602  params fail ``AnalysisRequest`` validation
``INTERNAL_ERROR``     -32603  a bug in the service itself
``ANALYSIS_ERROR``     -32000  the analysis raised (parse error, bad program)
``REQUEST_TIMEOUT``    -32001  the per-request budget elapsed (worker killed)
``WORKER_CRASH``       -32002  the worker died mid-request (and was respawned)
``PROGRAM_TOO_LARGE``  -32003  the program exceeds ``max_program_bytes``
``SHUTTING_DOWN``      -32004  request arrived after ``shutdown``
``OVERLOADED``         -32005  load was shed: the admission gate's
                               in-flight and queue bounds are both
                               saturated, or the tool's circuit breaker
                               is open after repeated worker crashes.
                               ``data.retry_after_seconds`` tells the
                               caller when to retry (see
                               :func:`repro.service.client.call_with_retry`)
=====================  ======  ==============================================

Every failure mode yields a *response* — a connection is never silently
dropped, and (via the pool's respawn) a crash never poisons a worker.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from repro.api.request import AnalysisRequest, RequestError

JSONRPC_VERSION = "2.0"

PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
ANALYSIS_ERROR = -32000
REQUEST_TIMEOUT = -32001
WORKER_CRASH = -32002
PROGRAM_TOO_LARGE = -32003
SHUTTING_DOWN = -32004
OVERLOADED = -32005

#: Default cap on one program's UTF-8 size (1 MiB), way beyond any real
#: mini-language program; the gate exists to bound a request's memory.
DEFAULT_MAX_PROGRAM_BYTES = 1 << 20

#: The methods the service speaks, in documentation order.
SERVICE_METHODS = (
    "analyze",
    "analyze_batch",
    "list_provers",
    "cache_stats",
    "shutdown",
)


class ProtocolError(Exception):
    """A request failed; carries the JSON-RPC error code and data."""

    def __init__(self, code: int, message: str, data: Optional[dict] = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data


def result_response(request_id: Any, result: Any) -> dict:
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def error_response(
    request_id: Any, code: int, message: str, data: Optional[dict] = None
) -> dict:
    error: Dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "error": error}


class ServiceProtocol:
    """One JSON-RPC endpoint over an executor.

    *executor* computes one :class:`AnalysisRequest` into an
    :class:`~repro.api.result.AnalysisResult` (stamping provenance); it
    raises :class:`ProtocolError` for timeouts and worker crashes.  The
    protocol object is shared by every connection of a server, so it
    must only hold thread-safe state (it does: a shutdown flag and the
    executor, which is itself thread-safe).
    """

    def __init__(
        self,
        executor,
        max_program_bytes: int = DEFAULT_MAX_PROGRAM_BYTES,
    ):
        self.executor = executor
        self.max_program_bytes = int(max_program_bytes)
        self.shutdown_requested = False
        self._methods: Dict[str, Callable[[Any], Any]] = {
            "analyze": self._method_analyze,
            "analyze_batch": self._method_analyze_batch,
            "list_provers": self._method_list_provers,
            "cache_stats": self._method_cache_stats,
            "shutdown": self._method_shutdown,
        }

    # -- the line loop -----------------------------------------------------------

    def handle_line(self, line: str) -> Optional[str]:
        """One request line in, one response line (or ``None``) out.

        Never raises: every failure becomes a JSON-RPC error response.
        ``None`` is returned only for notifications (requests without an
        ``id``) and blank lines.
        """
        if isinstance(line, bytes):
            try:
                line = line.decode("utf-8")
            except UnicodeDecodeError as error:
                return json.dumps(
                    error_response(None, PARSE_ERROR, "invalid UTF-8: %s" % error)
                )
        if not line.strip():
            return None
        response = self.handle_message_text(line)
        if response is None:
            return None
        return json.dumps(response, sort_keys=True)

    def handle_message_text(self, text: str) -> Optional[dict]:
        try:
            message = json.loads(text)
        except json.JSONDecodeError as error:
            return error_response(None, PARSE_ERROR, "parse error: %s" % error)
        return self.handle_message(message)

    def handle_message(self, message: Any) -> Optional[dict]:
        """Dispatch one decoded request object; ``None`` for notifications."""
        if not isinstance(message, dict):
            return error_response(
                None, INVALID_REQUEST, "request must be a JSON object"
            )
        request_id = message.get("id")
        is_notification = "id" not in message
        if not (request_id is None or isinstance(request_id, (str, int))):
            return error_response(
                None, INVALID_REQUEST, "id must be a string, an integer or null"
            )

        def respond(response: Optional[dict]) -> Optional[dict]:
            return None if is_notification else response

        if message.get("jsonrpc") != JSONRPC_VERSION:
            return respond(
                error_response(
                    request_id, INVALID_REQUEST, 'jsonrpc must be "2.0"'
                )
            )
        method = message.get("method")
        if not isinstance(method, str):
            return respond(
                error_response(
                    request_id, INVALID_REQUEST, "method must be a string"
                )
            )
        handler = self._methods.get(method)
        if handler is None:
            return respond(
                error_response(
                    request_id,
                    METHOD_NOT_FOUND,
                    "unknown method %r (have: %s)"
                    % (method, ", ".join(SERVICE_METHODS)),
                )
            )
        if self.shutdown_requested and method != "shutdown":
            return respond(
                error_response(
                    request_id, SHUTTING_DOWN, "service is shutting down"
                )
            )
        params = message.get("params", {})
        if not isinstance(params, dict):
            return respond(
                error_response(
                    request_id,
                    INVALID_PARAMS,
                    "params must be an object (by-name), got %s"
                    % type(params).__name__,
                )
            )
        try:
            result = handler(params)
        except ProtocolError as error:
            return respond(
                error_response(request_id, error.code, error.message, error.data)
            )
        except Exception as error:  # a service bug must still answer
            return respond(
                error_response(
                    request_id,
                    INTERNAL_ERROR,
                    "internal error: %s: %s" % (type(error).__name__, error),
                )
            )
        return respond(result_response(request_id, result))

    # -- request construction ----------------------------------------------------

    def parse_request(self, params: Any) -> AnalysisRequest:
        """Validate one ``AnalysisRequest`` document (size gate first)."""
        if not isinstance(params, dict):
            raise ProtocolError(
                INVALID_PARAMS,
                "request must be an object, got %s" % type(params).__name__,
            )
        program = params.get("program")
        if isinstance(program, str):
            size = len(program.encode("utf-8"))
            if size > self.max_program_bytes:
                raise ProtocolError(
                    PROGRAM_TOO_LARGE,
                    "program is %d bytes; the limit is %d"
                    % (size, self.max_program_bytes),
                    data={"bytes": size, "limit": self.max_program_bytes},
                )
        try:
            return AnalysisRequest.from_dict(params)
        except RequestError as error:
            raise ProtocolError(
                INVALID_PARAMS, "invalid request: %s" % error
            ) from None

    # -- methods -----------------------------------------------------------------

    def _method_analyze(self, params: Any) -> dict:
        request = self.parse_request(params)
        result = self.executor.run(request)
        return result.to_dict()

    def _method_analyze_batch(self, params: Any) -> dict:
        requests = params.get("requests")
        if not isinstance(requests, list):
            raise ProtocolError(
                INVALID_PARAMS, 'params must carry a "requests" array'
            )
        parsed = [self.parse_request(entry) for entry in requests]
        # Fan the members out across the worker pool (bounded by the
        # executor's fan-out width, itself bounded by the admission
        # gate); slot order is the request order regardless of
        # completion order.
        fanout = max(1, int(getattr(self.executor, "fanout", 1)))
        if fanout <= 1 or len(parsed) <= 1:
            results = [self._run_batch_member(request) for request in parsed]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(fanout, len(parsed)),
                thread_name_prefix="repro-batch",
            ) as threads:
                results = list(threads.map(self._run_batch_member, parsed))
        return {"results": results}

    def _run_batch_member(self, request: AnalysisRequest) -> dict:
        try:
            result = self.executor.run(request)
        except ProtocolError as error:
            # Keep the batch rectangular: a member-level failure is
            # an error result in its slot, not a batch-level error.
            from repro.api.result import AnalysisResult, AnalysisStatus

            status = (
                AnalysisStatus.TIMEOUT
                if error.code == REQUEST_TIMEOUT
                else AnalysisStatus.ERROR
            )
            result = AnalysisResult(
                tool=request.tool,
                program=request.name,
                status=status,
                error=error.message,
                timed_out=error.code == REQUEST_TIMEOUT,
            )
        return result.to_dict()

    def _method_list_provers(self, params: Any) -> dict:
        from repro.api.registry import prover_capabilities, prover_summaries

        return {
            "provers": prover_summaries(),
            "capabilities": prover_capabilities(),
        }

    def _method_cache_stats(self, params: Any) -> dict:
        return self.executor.cache_stats()

    def _method_shutdown(self, params: Any) -> dict:
        self.shutdown_requested = True
        return {"stopping": True}
