"""Deterministic fault injection for the analysis service.

The service's robustness claims — every request answered, zero unsound
results served, respawn budgets never exceeded — are only claims until
something actually goes wrong.  This module makes things go wrong *on
purpose and reproducibly*: a :class:`FaultPlan` names the failure modes
to inject and their per-event probabilities, and a :class:`FaultInjector`
turns the plan plus a seed into a deterministic schedule of injections
(one seeded PRNG consulted under a lock, so the decision sequence is a
pure function of the plan for a serialised event order).

Failure modes
-------------

``kill_worker``
    The leased pool worker ``os._exit``\\ s mid-request — exercises crash
    detection, respawn, the respawn budget and the circuit breaker.
``delay_worker``
    The worker sleeps ``delay_seconds`` before computing — exercises the
    per-request timeout and the hung-worker watchdog.
``corrupt_cache`` / ``truncate_cache``
    The just-written disk cache file is overwritten with garbage /
    truncated mid-document — exercises the load-path integrity checks
    (``disk_drops``) and the checker gate.
``drop_connection``
    The TCP response is cut off mid-line (half the payload, no newline,
    then RST-ish close) — exercises client retry and server framing.

The plan rides into ``repro serve`` through the hidden ``--fault-plan``
flag (specs like ``seed0``, ``seed7:kill=0.2,delay=0.1``, or ``off``)
and is threaded into the pool executor (worker faults), the result cache
(disk faults) and the connection loop (transport faults).  Production
deployments simply never pass the flag: the default plan is inert and
injects nothing.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, replace
from typing import Optional

#: Probabilities used by the ``seedN`` presets (the chaos suite's mix).
_PRESET_RATES = {
    "kill_worker": 0.15,
    "delay_worker": 0.10,
    "corrupt_cache": 0.25,
    "truncate_cache": 0.15,
    "drop_connection": 0.15,
}

#: Spec aliases accepted on the command line.
_FIELD_ALIASES = {
    "kill": "kill_worker",
    "kill_worker": "kill_worker",
    "delay": "delay_worker",
    "delay_worker": "delay_worker",
    "corrupt": "corrupt_cache",
    "corrupt_cache": "corrupt_cache",
    "truncate": "truncate_cache",
    "truncate_cache": "truncate_cache",
    "drop": "drop_connection",
    "drop_connection": "drop_connection",
}


class FaultPlanError(ValueError):
    """The ``--fault-plan`` spec cannot be parsed."""


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to inject, at what rate, from which seed."""

    seed: int = 0
    kill_worker: float = 0.0
    delay_worker: float = 0.0
    corrupt_cache: float = 0.0
    truncate_cache: float = 0.0
    drop_connection: float = 0.0
    #: How long a delayed worker sleeps; meaningful past the deadline.
    delay_seconds: float = 2.0

    def __post_init__(self) -> None:
        for name in _PRESET_RATES:
            rate = getattr(self, name)
            if not (isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0):
                raise FaultPlanError(
                    "%s must be a probability in [0, 1], got %r" % (name, rate)
                )
        if not (
            isinstance(self.delay_seconds, (int, float))
            and self.delay_seconds >= 0
        ):
            raise FaultPlanError(
                "delay_seconds must be non-negative, got %r"
                % (self.delay_seconds,)
            )

    @property
    def inert(self) -> bool:
        return all(getattr(self, name) == 0.0 for name in _PRESET_RATES)

    def describe(self) -> str:
        active = [
            "%s=%g" % (name, getattr(self, name))
            for name in sorted(_PRESET_RATES)
            if getattr(self, name) > 0
        ]
        return "seed%d:%s" % (self.seed, ",".join(active) or "off")

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        """Build a plan from a ``--fault-plan`` spec.

        ``None``/``"off"`` → the inert plan.  ``seedN`` → the preset
        chaos mix under seed N.  ``seedN:kill=0.2,delay=0.1[,...]`` →
        only the named faults, at the given rates (aliases above;
        ``delay_seconds=S`` tunes the sleep).
        """
        if spec is None or spec.strip().lower() in ("", "off", "none"):
            return cls()
        text = spec.strip().lower()
        head, _, tail = text.partition(":")
        if not head.startswith("seed"):
            raise FaultPlanError(
                "fault plan must start with 'seedN', got %r" % spec
            )
        try:
            seed = int(head[len("seed"):])
        except ValueError:
            raise FaultPlanError("bad fault-plan seed in %r" % spec) from None
        if not tail:
            return cls(seed=seed, **_PRESET_RATES)
        plan = cls(seed=seed)
        for part in tail.split(","):
            if not part:
                continue
            key, eq, value = part.partition("=")
            if not eq:
                raise FaultPlanError(
                    "fault-plan entries are key=value, got %r" % part
                )
            if key == "delay_seconds":
                field_name = "delay_seconds"
            else:
                field_name = _FIELD_ALIASES.get(key)
                if field_name is None:
                    raise FaultPlanError(
                        "unknown fault %r (have: %s)"
                        % (key, ", ".join(sorted(set(_FIELD_ALIASES))))
                    )
            try:
                rate = float(value)
            except ValueError:
                raise FaultPlanError(
                    "bad value for %s in %r" % (key, part)
                ) from None
            plan = replace(plan, **{field_name: rate})
        return plan


@dataclass
class FaultLog:
    """Injection counters (what the chaos suite asserts against)."""

    kill_worker: int = 0
    delay_worker: int = 0
    corrupt_cache: int = 0
    truncate_cache: int = 0
    drop_connection: int = 0

    def to_dict(self) -> dict:
        return {
            "kill_worker": self.kill_worker,
            "delay_worker": self.delay_worker,
            "corrupt_cache": self.corrupt_cache,
            "truncate_cache": self.truncate_cache,
            "drop_connection": self.drop_connection,
        }

    @property
    def total(self) -> int:
        return sum(self.to_dict().values())


class FaultInjector:
    """The seeded schedule: one PRNG, consulted under a lock.

    ``decide(name)`` draws once and reports whether to inject *name*
    this time, bumping the log when it fires.  The inert injector (the
    default plan) never draws, so production paths stay byte-identical.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self._random = random.Random(self.plan.seed)
        self._lock = threading.Lock()
        self.log = FaultLog()

    @property
    def active(self) -> bool:
        return not self.plan.inert

    def decide(self, name: str) -> bool:
        rate = getattr(self.plan, name)
        if rate <= 0.0:
            return False
        with self._lock:
            fired = self._random.random() < rate
            if fired:
                setattr(self.log, name, getattr(self.log, name) + 1)
        return fired

    # -- the worker-side markers -------------------------------------------------

    def annotate_worker_message(self, document: dict) -> dict:
        """Stamp worker-side faults into the request document.

        The pool worker honours ``__fault__`` before parsing the request
        (see ``repro.service.server._analyze_request_document``): a
        ``kill`` marker makes it ``os._exit`` mid-request, a ``delay``
        marker makes it sleep past the deadline first.
        """
        if self.decide("kill_worker"):
            return dict(document, __fault__="kill")
        if self.decide("delay_worker"):
            return dict(
                document,
                __fault__="delay",
                __fault_delay__=self.plan.delay_seconds,
            )
        return document


#: Shared inert injector: ``decide`` is always False, nothing ever logs.
INERT_INJECTOR = FaultInjector(FaultPlan())
