"""Admission control: the overload gate and the per-tool circuit breaker.

The service answers millions-of-users-style traffic only as long as the
worker pool is never asked to do more than it can: without a gate, a
burst of slow requests exhausts the pool and every later caller just
queues behind it, turning an overload into unbounded latency for
everyone.  :class:`AdmissionGate` bounds the damage with two numbers:

* ``max_inflight`` — how many requests may *compute* concurrently
  (normally the worker-pool size: more than that cannot make progress
  anyway);
* ``max_queue`` — how many requests may *wait* for a compute slot.

A request beyond both bounds is **shed immediately** with the
``OVERLOADED`` (-32005) JSON-RPC error carrying ``retry_after_seconds``
— an estimate of when a slot will free up, derived from an exponential
moving average of recent service times — so a well-behaved client backs
off instead of piling on (see :func:`repro.service.client.call_with_retry`).

**Degradation tiers.**  Between "healthy" and "shedding" the gate
reports a pressure tier, and the executor trades precision for
throughput before it starts refusing work:

=====  ===========  ====================================================
tier   name         behaviour
=====  ===========  ====================================================
0      ``normal``   free compute slots; requests run exactly as asked
1      ``elevated`` all compute slots busy (requests are queueing);
                    ``nonterm="auto"`` races are dropped to
                    termination-only and non-default kernels fall back
                    to ``kernel="auto"`` — every shed feature is stamped
                    into ``provenance.degraded``
2      ``shedding`` the queue is full too; new work is refused with
                    ``OVERLOADED``
=====  ===========  ====================================================

:class:`CircuitBreaker` protects the pool from the *other* overload
mode: a request class (keyed per tool) that crashes its worker every
time would otherwise burn the pool's respawn budget doing nothing but
forking.  After ``failure_threshold`` consecutive crashes the circuit
opens and requests for that tool fail fast with ``OVERLOADED`` until a
cooldown elapses; then one probe request is let through (half-open) and
either closes the circuit or re-opens it with a doubled cooldown.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

#: Default service-time guess (seconds) before any request completed.
_DEFAULT_SERVICE_SECONDS = 0.5

#: Pressure tier names, indexed by tier number.
PRESSURE_TIERS = ("normal", "elevated", "shedding")


class Overloaded(Exception):
    """The gate (or a breaker) refused the request; retry later.

    Carries ``retry_after_seconds`` so the transport layer can build the
    ``OVERLOADED`` JSON-RPC error without knowing gate internals.
    """

    def __init__(self, message: str, retry_after_seconds: float):
        super().__init__(message)
        self.retry_after_seconds = max(0.05, float(retry_after_seconds))


class ShuttingDown(Exception):
    """The gate was closed (drain) while the request waited for a slot."""


class AdmissionGate:
    """A bounded in-flight/queue gate with load-shedding.

    Thread-safe; every transport thread calls :meth:`admit` before
    computing and releases the returned ticket in a ``finally``.
    """

    def __init__(
        self,
        max_inflight: int = 2,
        max_queue: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.max_inflight = max(1, int(max_inflight))
        self.max_queue = max(0, int(max_queue))
        self._clock = clock
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self._closed = False
        # EWMA of service times, feeding the retry_after estimate.
        self._avg_service_seconds = _DEFAULT_SERVICE_SECONDS
        self._admitted = 0
        self._shed = 0
        self._degraded = 0

    # -- introspection -----------------------------------------------------------

    def pressure_tier(self) -> int:
        """0 = normal, 1 = elevated (queueing), 2 = shedding (queue full).

        Callers check this *after* admitting themselves, so saturated
        in-flight slots alone are not pressure — a lone request on a
        one-worker server is "normal".  Pressure means someone is
        actually waiting behind the in-flight line.
        """
        with self._lock:
            return self._tier_locked()

    def _tier_locked(self) -> int:
        if self._inflight >= self.max_inflight and self._queued > 0:
            return 2 if self._queued >= self.max_queue else 1
        return 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self._inflight,
                "queued": self._queued,
                "admitted": self._admitted,
                "shed": self._shed,
                "degraded": self._degraded,
                "pressure": PRESSURE_TIERS[self._tier_locked()],
                "avg_service_seconds": round(self._avg_service_seconds, 4),
            }

    def retry_after_seconds(self) -> float:
        """When the caller should retry: the time to drain the line.

        The queue ahead of a shed request is ``max_queue`` deep and
        drains ``max_inflight`` wide, so one EWMA service time per
        ``ceil((queued + 1) / max_inflight)`` waves.
        """
        with self._lock:
            waves = 1 + (self._queued + self.max_inflight) // self.max_inflight
            return max(0.05, round(self._avg_service_seconds * waves, 3))

    def note_degraded(self) -> None:
        with self._lock:
            self._degraded += 1

    # -- admission ---------------------------------------------------------------

    def admit(self, timeout: Optional[float] = None) -> "AdmissionTicket":
        """Take a compute slot, waiting in the bounded queue if needed.

        Raises :class:`Overloaded` when both the in-flight bound and the
        queue bound are saturated (or *timeout* elapses while queued),
        and :class:`ShuttingDown` when the gate closes mid-wait.
        """
        deadline = None if timeout is None else self._clock() + timeout
        waited = False
        with self._lock:
            if self._closed:
                raise ShuttingDown("service is shutting down")
            if self._inflight >= self.max_inflight:
                if self._queued >= self.max_queue:
                    self._shed += 1
                    raise Overloaded(
                        "service is overloaded (%d in flight, %d queued)"
                        % (self._inflight, self._queued),
                        self._retry_after_locked(),
                    )
                self._queued += 1
                waited = True
                try:
                    while self._inflight >= self.max_inflight:
                        if self._closed:
                            raise ShuttingDown("service is shutting down")
                        budget = None
                        if deadline is not None:
                            budget = deadline - self._clock()
                            if budget <= 0:
                                self._shed += 1
                                # We may have swallowed a _release wakeup
                                # racing this timeout; pass it on so a
                                # sibling waiter is not left asleep with a
                                # slot free.
                                self._slot_freed.notify()
                                raise Overloaded(
                                    "queued past its admission budget",
                                    self._retry_after_locked(),
                                )
                        self._slot_freed.wait(budget)
                finally:
                    self._queued -= 1
            self._inflight += 1
            self._admitted += 1
        return AdmissionTicket(self, waited=waited)

    def _retry_after_locked(self) -> float:
        waves = 1 + (self._queued + self.max_inflight) // self.max_inflight
        return max(0.05, round(self._avg_service_seconds * waves, 3))

    def _release(self, elapsed: float) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if elapsed >= 0:
                # EWMA with alpha 0.2: stable under bursts, still tracks
                # a workload shift within a handful of requests.
                self._avg_service_seconds += 0.2 * (
                    elapsed - self._avg_service_seconds
                )
            self._slot_freed.notify()

    def close(self) -> None:
        """Begin drain: refuse new admissions, wake every queued waiter
        (they raise :class:`ShuttingDown`); in-flight work is untouched."""
        with self._lock:
            self._closed = True
            self._slot_freed.notify_all()


class AdmissionTicket:
    """One admitted request; release exactly once (context manager).

    ``waited`` records whether the admission queued behind the in-flight
    line — the executor re-checks the cache for such requests, since a
    duplicate may have completed during the wait.
    """

    def __init__(self, gate: AdmissionGate, waited: bool = False):
        self._gate = gate
        self._started = gate._clock()
        self._released = False
        self.waited = waited

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._gate._release(self._gate._clock() - self._started)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class CircuitBreaker:
    """Fail fast on request classes that keep crashing their worker.

    One breaker instance covers every tool (state is keyed per tool
    name); thread-safe.  ``record_success``/``record_crash`` are called
    by the executor after each computed request, ``check`` before one.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 5.0,
        max_cooldown_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_seconds = float(cooldown_seconds)
        self.max_cooldown_seconds = float(max_cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive: Dict[str, int] = {}
        self._open_until: Dict[str, float] = {}
        self._cooldown: Dict[str, float] = {}
        self._probing: Dict[str, bool] = {}
        self._fast_failures = 0

    def stats(self) -> dict:
        now = self._clock()
        with self._lock:
            return {
                "failure_threshold": self.failure_threshold,
                "open_tools": sorted(
                    tool
                    for tool, until in self._open_until.items()
                    if until > now
                ),
                "fast_failures": self._fast_failures,
            }

    def check(self, tool: str) -> None:
        """Raise :class:`Overloaded` when *tool*'s circuit is open.

        When the cooldown has elapsed the first caller through becomes
        the half-open probe; concurrent callers keep failing fast until
        the probe reports back.
        """
        now = self._clock()
        with self._lock:
            until = self._open_until.get(tool)
            if until is None:
                return
            if now < until:
                self._fast_failures += 1
                raise Overloaded(
                    "tool %r is circuit-broken after %d consecutive worker "
                    "crashes" % (tool, self._consecutive.get(tool, 0)),
                    until - now,
                )
            if self._probing.get(tool):
                self._fast_failures += 1
                raise Overloaded(
                    "tool %r is half-open; a probe is already in flight"
                    % tool,
                    self._cooldown.get(tool, self.cooldown_seconds),
                )
            self._probing[tool] = True

    def record_success(self, tool: str) -> None:
        with self._lock:
            self._consecutive.pop(tool, None)
            self._open_until.pop(tool, None)
            self._cooldown.pop(tool, None)
            self._probing.pop(tool, None)

    def record_neutral(self, tool: str) -> None:
        """The request neither crashed nor proved the worker healthy
        (timeout, analysis-level error): release a half-open probe
        without touching the crash counters."""
        with self._lock:
            self._probing.pop(tool, None)

    def record_crash(self, tool: str) -> None:
        now = self._clock()
        with self._lock:
            count = self._consecutive.get(tool, 0) + 1
            self._consecutive[tool] = count
            was_probe = self._probing.pop(tool, False)
            if count >= self.failure_threshold or was_probe:
                cooldown = self._cooldown.get(tool, 0.0)
                cooldown = (
                    self.cooldown_seconds
                    if cooldown == 0.0
                    else min(self.max_cooldown_seconds, cooldown * 2)
                )
                self._cooldown[tool] = cooldown
                self._open_until[tool] = now + cooldown
