#!/usr/bin/env python3
"""The sparse-kernel micro-suite (delegates to ``repro bench``).

Measures the scaled-integer row kernel, the simplex rebuilt on top of
it, the pruned Fourier–Motzkin projection and an end-to-end Table-1 WTC
slice, and writes the machine-readable trajectory to
``BENCH_kernel.json``.  The implementation lives in
:mod:`repro.reporting.perf` (the suites) and :func:`repro.cli.bench_main`
(the file handling), so the same harness is reachable three ways:

    python benchmarks/perf_kernel.py
    python -m repro bench
    repro bench                            # after `pip install -e .`

Examples::

    python benchmarks/perf_kernel.py --quick           # CI smoke sizes
    python benchmarks/perf_kernel.py --json BENCH_kernel.json
    python benchmarks/perf_kernel.py --seed 7          # reseed the suites
"""

import sys

from repro.cli import bench_main


def main(argv=None) -> int:
    return bench_main(argv)


if __name__ == "__main__":
    sys.exit(main())
