"""Ablation: local vs global optimisation in the SMT queries (§4 / §9).

The paper argues for *optimisation modulo theory*: minimising ``λ·u`` so
counterexamples are extremal.  The reproduction's OMT layer offers a
"local" mode (minimise inside the first satisfiable disjunct — the
default) and a "global" mode (search every disjunct for the overall
minimum).  Both are sound; the ablation compares their cost and the
number of refinement iterations they need.
"""

import pytest

from repro.benchsuite import get_suite
from repro.core.termination import TerminationProver

PROGRAMS = [p for p in get_suite("wtc") if p.terminating][:3]


def _run(mode: str):
    proved = 0
    iterations = 0
    for program in PROGRAMS:
        prover = TerminationProver(
            program.build(), smt_mode=mode, check_certificates=False
        )
        result = prover.prove()
        proved += int(result.proved)
        iterations += result.iterations
    return proved, iterations


@pytest.mark.parametrize("mode", ["local", "global"])
def test_optimizing_smt_mode(benchmark, mode):
    proved, iterations = benchmark.pedantic(_run, args=(mode,), rounds=1, iterations=1)
    print(
        "\nmode=%s: proved %d/%d with %d refinement iterations"
        % (mode, proved, len(PROGRAMS), iterations)
    )
    assert proved >= 1
