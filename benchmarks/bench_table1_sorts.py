"""Table 1, Sorts row (paper: 6 benchmarks, Termite 5, Loopus 3)."""

import pytest

from conftest import QUICK_TOOLS, run_table1_row


@pytest.mark.parametrize("tool", QUICK_TOOLS)
def test_table1_sorts(benchmark, tool):
    # bubble sort and selection sort are the representative subset; the
    # remaining four run in the full sweep (benchmarks/table1.py).
    run_table1_row(benchmark, "sorts", tool, limit=2)
