"""The §9 LP-size comparison: Termite's lazy instances vs Rank's eager ones.

The paper reports that Rank's average LP is (584, 229) rows×columns on the
WTC suite while Termite's is (5, 2): the lazy construction is 1–2 orders
of magnitude smaller.  The benchmark measures both constructions on the
same problems and asserts the ordering (eager ≫ lazy).
"""


from repro.baselines import eager_farkas_lexicographic
from repro.benchsuite import get_suite
from repro.core.termination import TerminationProver

PROGRAMS = [p for p in get_suite("wtc") if p.terminating][:4]


def _lazy_sizes():
    rows = cols = count = 0
    for program in PROGRAMS:
        result = TerminationProver(program.build(), check_certificates=False).prove()
        if result.lp_statistics.instances:
            rows += result.lp_statistics.average_rows
            cols += result.lp_statistics.average_cols
            count += 1
    return (rows / count, cols / count) if count else (0.0, 0.0)


def _eager_sizes():
    rows = cols = count = 0
    for program in PROGRAMS:
        problem = TerminationProver(
            program.build(), check_certificates=False
        ).build_problem()
        result = eager_farkas_lexicographic(problem)
        if result.lp_statistics.instances:
            rows += result.lp_statistics.average_rows
            cols += result.lp_statistics.average_cols
            count += 1
    return (rows / count, cols / count) if count else (0.0, 0.0)


def test_lazy_lp_sizes(benchmark):
    rows, cols = benchmark.pedantic(_lazy_sizes, rounds=1, iterations=1)
    print("\nTermite (lazy) average LP size: (%.1f, %.1f)" % (rows, cols))
    assert rows < 50


def test_eager_lp_sizes(benchmark):
    rows, cols = benchmark.pedantic(_eager_sizes, rounds=1, iterations=1)
    print("\nRank-style (eager Farkas) average LP size: (%.1f, %.1f)" % (rows, cols))
    lazy_rows, lazy_cols = _lazy_sizes()
    assert rows > lazy_rows, "eager construction should need more constraint rows"
