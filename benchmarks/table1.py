#!/usr/bin/env python3
"""Regenerate the paper's Table 1 (delegates to ``repro table1``).

Runs every prover over every suite (or a subset via command-line options)
through the crash-isolated parallel engine, resolving tool names via the
prover registry of :mod:`repro.api`.  The implementation lives in
:func:`repro.cli.table1_main` so the same harness is reachable three ways:

    python benchmarks/table1.py --quick
    python -m repro table1 --quick
    repro table1 --quick                  # after `pip install -e .`

Examples::

    python benchmarks/table1.py --quick               # fast subset
    python benchmarks/table1.py --suite wtc            # one full suite
    python benchmarks/table1.py --tool termite --tool heuristic --tool dnf
    python benchmarks/table1.py --jobs 4 --timeout 60 --json table1.json
    python benchmarks/table1.py --filter sort          # name substring
    python benchmarks/table1.py --lp-mode cold         # warm-start ablation
"""

import sys

from repro.cli import table1_main


def main(argv=None) -> int:
    return table1_main(argv)


if __name__ == "__main__":
    sys.exit(main())
