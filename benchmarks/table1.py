#!/usr/bin/env python3
"""Regenerate the paper's Table 1.

Runs every prover over every suite (or a subset via command-line options)
and prints a table with, per (suite, tool) pair: the number of benchmarks,
the number proved terminating, the average analysis time, and the average
LP size — the same columns as the paper.

Examples::

    python benchmarks/table1.py --quick              # fast subset
    python benchmarks/table1.py --suite wtc           # one full suite
    python benchmarks/table1.py --tool termite --tool heuristic
"""

from __future__ import annotations

import argparse

from repro.benchsuite import get_suite, suite_names
from repro.reporting import TOOLS, format_table, run_suite
from repro.reporting.table import TABLE1_HEADERS, format_table1_row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        action="append",
        choices=suite_names(),
        help="suite(s) to run (default: all four)",
    )
    parser.add_argument(
        "--tool",
        action="append",
        choices=list(TOOLS),
        help="tool(s) to run (default: termite and heuristic)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="only run the first N programs of each suite",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --limit 5",
    )
    arguments = parser.parse_args()

    suites = arguments.suite or suite_names()
    tools = arguments.tool or ["termite", "heuristic"]
    limit = 5 if arguments.quick and arguments.limit is None else arguments.limit

    rows = []
    for suite in suites:
        programs = get_suite(suite)
        for tool in tools:
            report = run_suite(suite, programs, tool=tool, limit=limit)
            rows.append(format_table1_row(report))
            print(format_table(TABLE1_HEADERS, rows))
            print()


if __name__ == "__main__":
    main()
