#!/usr/bin/env python3
"""Regenerate the paper's Table 1.

Runs every prover over every suite (or a subset via command-line options)
and prints a table with, per (suite, tool) pair: the number of benchmarks,
the number proved terminating, the average analysis time, the average LP
size and the total simplex pivot count (with its warm/cold solve split) —
the paper's columns plus the cost metric the incremental LP drives down.

Programs run through the parallel benchmark engine: ``--jobs N`` runs N
programs concurrently in crash-isolated worker processes, ``--timeout S``
kills any single program after S wall-clock seconds (recording a failed
outcome instead of hanging the table), and ``--json OUT`` writes the
machine-readable run summary consumed by CI.  Result ordering is
deterministic regardless of --jobs.

Examples::

    python benchmarks/table1.py --quick               # fast subset
    python benchmarks/table1.py --suite wtc            # one full suite
    python benchmarks/table1.py --tool termite --tool heuristic
    python benchmarks/table1.py --jobs 4 --timeout 60 --json table1.json
    python benchmarks/table1.py --filter sort          # name substring
    python benchmarks/table1.py --lp-mode cold         # warm-start ablation
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.benchsuite import get_suite, suite_names
from repro.core.lp_instance import LP_MODES
from repro.reporting import (
    TOOLS,
    format_table,
    reports_to_json_dict,
    run_table1,
)
from repro.reporting.table import TABLE1_HEADERS, format_table1_row


def parse_arguments(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--suite",
        action="append",
        choices=suite_names(),
        help="suite(s) to run (default: all four)",
    )
    parser.add_argument(
        "--tool",
        action="append",
        choices=list(TOOLS),
        help="tool(s) to run (default: termite and heuristic)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="only run the first N programs of each suite",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --limit 5",
    )
    parser.add_argument(
        "--filter",
        dest="name_filter",
        default=None,
        metavar="SUBSTRING",
        help="only run programs whose name contains SUBSTRING "
        "(an empty selection produces an empty table row, not an error)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run N programs concurrently in crash-isolated worker "
        "processes (default: 1, inline)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-program wall-clock budget; a program over budget is "
        "killed and recorded as failed (default: no timeout)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="OUT",
        help="also write the machine-readable run summary to OUT "
        "(schema_version 1; consumed by the CI benchmark smoke job)",
    )
    parser.add_argument(
        "--lp-mode",
        choices=list(LP_MODES),
        default="incremental",
        help="how termite re-solves LP(V, Constraints(I)) across "
        "counterexample iterations: 'incremental' warm-starts from the "
        "previous optimal basis, 'cold' rebuilds from scratch (the "
        "ablation baseline), 'audit' does both and cross-checks the "
        "optima (default: incremental)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    arguments = parse_arguments(argv)

    suites = arguments.suite or suite_names()
    tools = arguments.tool or ["termite", "heuristic"]
    limit = 5 if arguments.quick and arguments.limit is None else arguments.limit

    started = time.perf_counter()
    reports = run_table1(
        {suite: get_suite(suite) for suite in suites},
        tools,
        limit=limit,
        jobs=arguments.jobs,
        timeout=arguments.timeout,
        lp_mode=arguments.lp_mode,
        name_filter=arguments.name_filter,
    )
    elapsed = time.perf_counter() - started

    rows = [format_table1_row(report) for report in reports]
    print(format_table(TABLE1_HEADERS, rows))
    print()
    print(
        "%d programs, %d proved, %d failed (%d timeouts), %d unsound | "
        "%d simplex pivots (%d warm / %d cold solves) | "
        "lp-mode=%s jobs=%d wall=%.1fs"
        % (
            sum(report.total for report in reports),
            sum(report.successes for report in reports),
            sum(report.failures for report in reports),
            sum(report.timeouts for report in reports),
            sum(len(report.unsound) for report in reports),
            sum(report.total_pivots for report in reports),
            sum(report.warm_solves for report in reports),
            sum(report.cold_solves for report in reports),
            arguments.lp_mode,
            arguments.jobs,
            elapsed,
        )
    )

    if arguments.json_path:
        document = reports_to_json_dict(
            reports,
            meta={
                "suites": list(suites),
                "tools": list(tools),
                "limit": limit,
                "filter": arguments.name_filter,
                "jobs": arguments.jobs,
                "timeout": arguments.timeout,
                "lp_mode": arguments.lp_mode,
                "wall_seconds": round(elapsed, 3),
            },
        )
        try:
            with open(arguments.json_path, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
        except OSError as error:
            print("error: cannot write %s: %s" % (arguments.json_path, error))
            return 2
        print("wrote %s" % arguments.json_path)

    unsound = sum(len(report.unsound) for report in reports)
    return 1 if unsound else 0


if __name__ == "__main__":
    sys.exit(main())
