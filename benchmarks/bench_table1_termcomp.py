"""Table 1, TermComp row (paper: 129 benchmarks, Termite 119, Loopus 78)."""

import pytest

from conftest import QUICK_TOOLS, run_table1_row


@pytest.mark.parametrize("tool", QUICK_TOOLS)
def test_table1_termcomp(benchmark, tool):
    run_table1_row(benchmark, "termcomp", tool, limit=6)
