"""Table 1, WTC row (paper: 58 benchmarks, Termite 46, Loopus 33)."""

import pytest

from conftest import QUICK_TOOLS, run_table1_row


@pytest.mark.parametrize("tool", QUICK_TOOLS)
def test_table1_wtc(benchmark, tool):
    run_table1_row(benchmark, "wtc", tool, limit=4)
