"""Shared helpers for the benchmark harness.

Every ``bench_table1_*.py`` file regenerates one row of the paper's
Table 1 on a representative subset of its suite (pytest-benchmark runs
must stay within a few minutes); the full sweep over all 223 programs is
produced by ``python benchmarks/table1.py``.
"""

from __future__ import annotations


from repro.benchsuite import get_suite
from repro.reporting import format_table, run_suite
from repro.reporting.table import TABLE1_HEADERS, format_table1_row

#: Number of programs per suite exercised by the pytest-benchmark harness.
QUICK_LIMIT = 4

#: Tools included in the quick harness (the eager baselines are covered by
#: the dedicated LP-size benchmarks, which use fewer programs).
QUICK_TOOLS = ("termite", "heuristic")


def run_table1_row(benchmark, suite_name: str, tool: str, limit: int = QUICK_LIMIT):
    """Benchmark one (suite, tool) cell and print the resulting row."""
    programs = get_suite(suite_name)[:limit]

    def execute():
        return run_suite(suite_name, programs, tool=tool)

    report = benchmark.pedantic(execute, rounds=1, iterations=1)
    row = format_table1_row(report)
    print()
    print(format_table(TABLE1_HEADERS, [row]))
    assert not report.unsound, (
        "soundness violation: proved non-terminating programs %s" % report.unsound
    )
    return report
