"""Ablation: lazy counterexample enumeration vs eager generator enumeration.

Both are complete for lexicographic linear ranking functions relative to
the same invariants (Ben-Amram & Genaim eagerly compute every vertex/ray;
Termite discovers only the extremal counterexamples it needs), so the
comparison isolates the cost of eagerness: number of generators
materialised and end-to-end time.
"""

import pytest

from repro.baselines import eager_generator_synthesis
from repro.benchsuite import get_suite
from repro.core.termination import TerminationProver

PROGRAMS = [p for p in get_suite("termcomp") if p.terminating][:4]


def _run_lazy():
    proved = 0
    for program in PROGRAMS:
        result = TerminationProver(program.build(), check_certificates=False).prove()
        proved += int(result.proved)
    return proved


def _run_eager():
    proved = 0
    generators = 0
    for program in PROGRAMS:
        problem = TerminationProver(
            program.build(), check_certificates=False
        ).build_problem()
        result = eager_generator_synthesis(problem)
        proved += int(result.proved)
        generators += int(result.details.get("generators", 0))
    return proved, generators


def test_lazy_enumeration(benchmark):
    proved = benchmark.pedantic(_run_lazy, rounds=1, iterations=1)
    print("\nlazy (Termite): proved %d/%d" % (proved, len(PROGRAMS)))
    assert proved >= 1


def test_eager_enumeration(benchmark):
    proved, generators = benchmark.pedantic(_run_eager, rounds=1, iterations=1)
    print(
        "\neager (BG14-style): proved %d/%d using %d generators"
        % (proved, len(PROGRAMS), generators)
    )
    assert proved >= 1
