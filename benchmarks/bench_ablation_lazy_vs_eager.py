"""Ablation: lazy counterexample enumeration vs eager generator enumeration.

Both are complete for lexicographic linear ranking functions relative to
the same invariants (Ben-Amram & Genaim eagerly compute every vertex/ray;
Termite discovers only the extremal counterexamples it needs), so the
comparison isolates the cost of eagerness: number of generators
materialised and end-to-end time.

A second axis compares warm-started vs cold LP re-solving *within* the
lazy loop: ``lp_mode="incremental"`` keeps one simplex tableau alive per
dimension and re-solves each new generator row from the previous optimal
basis, while ``lp_mode="cold"`` rebuilds the LP from scratch every
iteration (the seed behaviour).  The total pivot counters exposed by
:class:`~repro.core.lp_instance.LpStatistics` make the saving visible.
"""


from repro.baselines import eager_generator_synthesis
from repro.benchsuite import get_suite
from repro.core.termination import TerminationProver

PROGRAMS = [p for p in get_suite("termcomp") if p.terminating][:4]


def _run_lazy(lp_mode="incremental"):
    proved = 0
    pivots = 0
    warm = 0
    cold = 0
    for program in PROGRAMS:
        result = TerminationProver(
            program.build(), check_certificates=False, lp_mode=lp_mode
        ).prove()
        proved += int(result.proved)
        pivots += result.lp_statistics.pivots
        warm += result.lp_statistics.warm_solves
        cold += result.lp_statistics.cold_solves
    return proved, pivots, warm, cold


def _run_eager():
    proved = 0
    generators = 0
    for program in PROGRAMS:
        problem = TerminationProver(
            program.build(), check_certificates=False
        ).build_problem()
        result = eager_generator_synthesis(problem)
        proved += int(result.proved)
        generators += int(result.details.get("generators", 0))
    return proved, generators


def test_lazy_enumeration(benchmark):
    proved, pivots, warm, cold = benchmark.pedantic(
        _run_lazy, rounds=1, iterations=1
    )
    print(
        "\nlazy (Termite, warm-started LP): proved %d/%d, "
        "%d pivots (%d warm / %d cold solves)"
        % (proved, len(PROGRAMS), pivots, warm, cold)
    )
    assert proved >= 1


def test_lazy_enumeration_cold_lp(benchmark):
    proved, pivots, warm, cold = benchmark.pedantic(
        _run_lazy, args=("cold",), rounds=1, iterations=1
    )
    print(
        "\nlazy (Termite, cold LP rebuilds): proved %d/%d, "
        "%d pivots (%d warm / %d cold solves)"
        % (proved, len(PROGRAMS), pivots, warm, cold)
    )
    assert proved >= 1


def test_warm_start_reduces_pivots():
    """The headline number: warm starts must not cost extra pivots.

    On any program whose counterexample loop iterates, they save a
    multiple; the verdicts must be identical either way.
    """
    proved_warm, pivots_warm, warm_solves, _ = _run_lazy("incremental")
    proved_cold, pivots_cold, _, _ = _run_lazy("cold")
    print(
        "\nwarm-start ablation: %d pivots (warm) vs %d pivots (cold), "
        "%d warm solves" % (pivots_warm, pivots_cold, warm_solves)
    )
    assert proved_warm == proved_cold
    assert pivots_warm < pivots_cold


def test_eager_enumeration(benchmark):
    proved, generators = benchmark.pedantic(_run_eager, rounds=1, iterations=1)
    print(
        "\neager (BG14-style): proved %d/%d using %d generators"
        % (proved, len(PROGRAMS), generators)
    )
    assert proved >= 1
