"""Table 1, PolyBench row (paper: 30 benchmarks, Termite 22, Loopus 30).

The pytest harness runs a representative subset; the full row is produced
by ``python benchmarks/table1.py --suite polybench``.
"""

import pytest

from conftest import QUICK_TOOLS, run_table1_row


@pytest.mark.parametrize("tool", QUICK_TOOLS)
def test_table1_polybench(benchmark, tool):
    run_table1_row(benchmark, "polybench", tool, limit=3)
