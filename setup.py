"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
fully offline environments where the ``wheel`` package (required by the
PEP 660 editable-install path) is unavailable.
"""

from setuptools import setup

setup()
